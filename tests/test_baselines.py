"""Tests for the baseline implementations (MKL/ScaLAPACK, SLATE, CANDMC,
CAPITAL)."""


import numpy as np
import pytest

from repro.factorizations import conflux_lu
from repro.factorizations.baselines import (
    candmc_lu,
    capital_cholesky,
    scalapack_cholesky,
    scalapack_lu,
    slate_cholesky,
    slate_lu,
)
from repro.models import costmodels as cm


class TestScalapackLUNumerics:
    @pytest.mark.parametrize("n,p,nb", [(64, 4, 8), (96, 6, 16), (64, 1, 16)])
    def test_residual(self, rng, n, p, nb):
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        res = scalapack_lu(n, p, nb=nb, a=a)
        err = np.linalg.norm(a[res.perm] - res.lower @ res.upper)
        assert err / np.linalg.norm(a) < 1e-12

    def test_partial_pivoting_on_general_matrix(self, rng):
        n = 64
        a = rng.standard_normal((n, n))
        res = scalapack_lu(n, 4, nb=8, a=a)
        err = np.linalg.norm(a[res.perm] - res.lower @ res.upper)
        assert err / np.linalg.norm(a) < 1e-10

    def test_matches_scipy_lu(self, rng):
        import scipy.linalg

        n = 32
        a = rng.standard_normal((n, n))
        res = scalapack_lu(n, 4, nb=8, a=a)
        p_sp, l_sp, u_sp = scipy.linalg.lu(a)
        assert np.allclose(res.lower @ res.upper, a[res.perm])
        # Same pivot choices as unblocked partial pivoting.
        assert np.allclose(np.abs(np.diag(res.upper)),
                           np.abs(np.diag(u_sp)))


class TestScalapackCholeskyNumerics:
    @pytest.mark.parametrize("n,p,nb", [(64, 4, 8), (96, 6, 16)])
    def test_residual(self, rng, n, p, nb):
        g = rng.standard_normal((n, n))
        a = g @ g.T + n * np.eye(n)
        res = scalapack_cholesky(n, p, nb=nb, a=a)
        err = np.linalg.norm(a - res.lower @ res.lower.T)
        assert err / np.linalg.norm(a) < 1e-12

    def test_rejects_asymmetric(self, rng):
        a = rng.standard_normal((32, 32)) + 32 * np.eye(32)
        with pytest.raises(ValueError):
            scalapack_cholesky(32, 4, nb=8, a=a)


class TestVolumeModels:
    def test_mkl_matches_full_model(self):
        for (n, p) in [(8192, 256), (16384, 1024)]:
            res = scalapack_lu(n, p, nb=128, execute=False)
            assert res.mean_recv_words == pytest.approx(
                cm.mkl_lu_full_model(n, p, 128), rel=0.03)

    def test_slate_matches_full_model(self):
        for (n, p) in [(8192, 256), (16384, 1024)]:
            res = slate_lu(n, p, nb=128, execute=False)
            assert res.mean_recv_words == pytest.approx(
                cm.slate_lu_full_model(n, p, 128), rel=0.03)

    def test_cholesky_2d_matches_full_model(self):
        res = scalapack_cholesky(16384, 1024, nb=128, execute=False)
        assert res.mean_recv_words == pytest.approx(
            cm.mkl_cholesky_full_model(16384, 1024, 128), rel=0.03)

    def test_slate_slightly_below_mkl(self):
        """The paper: volumes 'mostly equal, with a slight advantage for
        SLATE'."""
        n, p = 16384, 1024
        mkl = scalapack_lu(n, p, nb=128, execute=False).mean_recv_words
        slate = slate_lu(n, p, nb=128, execute=False).mean_recv_words
        assert slate < mkl
        assert slate > 0.9 * mkl

    def test_2d_volume_scales_as_inverse_sqrt_p(self):
        """Table 2: 2D codes move ~N^2/sqrt(P) per rank."""
        n = 16384
        v256 = scalapack_lu(n, 256, nb=128, execute=False).mean_recv_words
        v1024 = scalapack_lu(n, 1024, nb=128, execute=False).mean_recv_words
        assert v256 / v1024 == pytest.approx(2.0, rel=0.15)

    def test_candmc_near_author_model(self):
        """CANDMC's traced volume tracks 5 N^3/(P sqrt(M))."""
        for (n, p, c) in [(16384, 1024, 8), (32768, 4096, 16)]:
            res = candmc_lu(n, p, c=c)
            m = c * float(n) * n / p
            model = cm.candmc_paper_model(n, p, m)
            assert res.mean_recv_words == pytest.approx(model, rel=0.25)

    def test_capital_near_author_model(self):
        for (n, p, c) in [(16384, 1024, 8), (32768, 4096, 16)]:
            res = capital_cholesky(n, p, c=c)
            m = c * float(n) * n / p
            model = cm.capital_paper_model(n, p, m)
            assert res.mean_recv_words == pytest.approx(model, rel=0.25)

    def test_candmc_execute_rejected(self):
        with pytest.raises(NotImplementedError):
            candmc_lu(1024, 64, execute=True)

    def test_capital_execute_rejected(self):
        with pytest.raises(NotImplementedError):
            capital_cholesky(1024, 64, execute=True)


class TestPaperOrdering:
    """The headline comparison: COnfLUX < SLATE <= MKL < CANDMC at the
    paper's scales, and CANDMC ~5x COnfLUX's leading term."""

    @pytest.mark.parametrize("n,p", [(16384, 1024), (32768, 4096)])
    def test_lu_volume_ordering(self, n, p):
        c = max(1, int(round(p ** (1 / 3))))
        while p % c:
            c -= 1
        conflux = conflux_lu(n, p, v=32, c=c, execute=False).mean_recv_words
        mkl = scalapack_lu(n, p, nb=128, execute=False).mean_recv_words
        slate = slate_lu(n, p, nb=128, execute=False).mean_recv_words
        candmc = candmc_lu(n, p, c=c).mean_recv_words
        assert conflux < slate <= mkl < candmc

    def test_candmc_vs_conflux_factor(self):
        """Paper: 'Compared to ... CANDMC ... COnfLUX communicates five
        times less' (leading terms; measured factor above 2.5x once
        COnfLUX's O(M) term is included)."""
        n, p, c = 32768, 4096, 8
        conflux = conflux_lu(n, p, v=32, c=c, execute=False).mean_recv_words
        candmc = candmc_lu(n, p, c=c).mean_recv_words
        assert candmc / conflux > 2.5
        # Leading-order (model) factor is the full 5x.
        m = c * float(n) * n / p
        assert cm.candmc_paper_model(n, p, m) / \
            cm.conflux_paper_model(n, p, m) == pytest.approx(5.0)

    def test_2d_wins_at_small_p_for_candmc_only(self):
        """The motivation in Section 1: CANDMC needs huge P to beat 2D,
        COnfLUX beats 2D immediately."""
        n, p = 16384, 64
        c = 4
        mkl = scalapack_lu(n, p, nb=128, execute=False).mean_recv_words
        candmc = candmc_lu(n, p, c=c).mean_recv_words
        conflux = conflux_lu(n, p, v=32, c=c, execute=False).mean_recv_words
        assert candmc > mkl          # CANDMC loses to 2D at small P
        assert conflux < mkl         # COnfLUX already wins

    def test_cholesky_volume_ordering(self):
        n, p, c = 16384, 1024, 8
        from repro.factorizations import confchox_cholesky

        ours = confchox_cholesky(n, p, v=32, c=c,
                                 execute=False).mean_recv_words
        mkl = scalapack_cholesky(n, p, nb=128,
                                 execute=False).mean_recv_words
        slate = slate_cholesky(n, p, nb=128,
                               execute=False).mean_recv_words
        capital = capital_cholesky(n, p, c=c).mean_recv_words
        assert ours < slate <= mkl < capital
