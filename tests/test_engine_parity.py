"""Trace-vs-distributed parity: the analytic accounting must agree with
counted execution.

The paper's central empirical claim is that the *measured* per-rank I/O
of COnfLUX/COnfCHOX matches the analytic near-optimal cost.  The engine
makes that claim checkable in-repo: the trace backend produces the
analytic volumes, the distributed backend counts words actually moved by
Machine collectives, and the totals must agree.

Documented tolerance (``PARITY_RTOL``): the analytic model deliberately
idealizes a few things the executable schedule does not —

* every rank is charged its full ``1/P`` share of the 1D panel
  scatters and piece distributions (steps 4, 6, 8, 10), while pieces
  already resident at their destination move zero words — a relative
  ``O(1/P)`` over-count that is negligible at paper scale but visible
  on the tiny machines these tests can afford;
* step 3 counts the A00 broadcast at all ``P`` ranks including the
  root, the machine at ``P - 1`` receivers;
* step 8 spreads ``nrem`` masked rows where the machine moves the
  ``n11 = nrem - v`` actual Schur rows (an edge term per step);
* the tournament idealizes ``ceil(log2(Pr))`` butterfly rounds at every
  panel-column rank, while late steps have fewer active participants.

Every idealization *over*-counts, so the measured volume sits below the
trace; the gap shrinks with both the step count ``N/v`` and the machine
size ``P``, which the asymptotic tests assert.  Sent words are *not*
compared: the trace attributes sent words only for the reductions and
broadcasts (received words are the paper's primary metric), so there is
no analytic sent total to match.
"""

import numpy as np
import pytest

from repro.engine import DistributedBackend, TraceBackend
from repro.factorizations import ConfchoxSchedule, ConfluxSchedule

#: Relative tolerance for total received words, trace vs counted, on
#: grids with at least 8 ranks and at least 8 panel steps.
PARITY_RTOL = 0.20

#: Small machines (P <= 6 or c = 1) and tiny step counts see the
#: O(1/P) local-share idealization at full strength.
PARITY_RTOL_EDGE = 0.35

GRID = [
    # (n, p, v, c) — P >= 8, at least 8 panel steps each
    (64, 8, 8, 2),
    (96, 12, 12, 3),
    (128, 8, 8, 2),
    (128, 16, 16, 4),
]

EDGE = [(32, 4, 8, 1), (48, 6, 8, 2), (64, 4, 8, 1), (128, 4, 8, 1)]


def lu_pair(n, p, v, c, rng):
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    trace = TraceBackend().run(ConfluxSchedule(n, p, v=v, c=c))
    dist = DistributedBackend().run(ConfluxSchedule(n, p, v=v, c=c), a=a)
    return trace, dist, a


def chol_pair(n, p, v, c, rng):
    g = rng.standard_normal((n, n))
    a = g @ g.T + n * np.eye(n)
    trace = TraceBackend().run(ConfchoxSchedule(n, p, v=v, c=c))
    dist = DistributedBackend().run(ConfchoxSchedule(n, p, v=v, c=c), a=a)
    return trace, dist, a


class TestLUParity:
    @pytest.mark.parametrize("n,p,v,c", GRID)
    def test_total_recv_words(self, rng, n, p, v, c):
        trace, dist, _ = lu_pair(n, p, v, c, rng)
        assert dist.comm.total_recv_words == pytest.approx(
            trace.comm.total_recv_words, rel=PARITY_RTOL)

    @pytest.mark.parametrize("n,p,v,c", EDGE)
    def test_total_recv_words_edge(self, rng, n, p, v, c):
        trace, dist, _ = lu_pair(n, p, v, c, rng)
        assert dist.comm.total_recv_words == pytest.approx(
            trace.comm.total_recv_words, rel=PARITY_RTOL_EDGE)

    @pytest.mark.parametrize("n,p,v,c", GRID)
    def test_counted_run_stays_numerically_exact(self, rng, n, p, v, c):
        _, dist, a = lu_pair(n, p, v, c, rng)
        err = np.linalg.norm(a[dist.perm] - dist.lower @ dist.upper)
        assert err / np.linalg.norm(a) < 1e-12

    def test_trace_overcounts(self, rng):
        """Every trace idealization over-counts (module docstring), so
        the counted volume must sit at or below the analytic one."""
        for n, p, v, c in GRID:
            trace, dist, _ = lu_pair(n, p, v, c, rng)
            assert (dist.comm.total_recv_words
                    <= trace.comm.total_recv_words * 1.001)

    def test_gap_shrinks_with_step_count(self, rng):
        """The trace-vs-counted gap is a lower-order edge effect: more
        panel steps at fixed (P, v, c) must shrink the relative gap."""
        def rel_gap(n):
            trace, dist, _ = lu_pair(n, 8, 8, 2, rng)
            t = trace.comm.total_recv_words
            return abs(t - dist.comm.total_recv_words) / t

        assert rel_gap(160) < rel_gap(48)

    def test_gap_shrinks_with_machine_size(self, rng):
        """The 1/P local-share idealization fades as P grows at fixed
        steps-per-rank shape."""
        def rel_gap(n, p, c):
            trace, dist, _ = lu_pair(n, p, 8, c, rng)
            t = trace.comm.total_recv_words
            return abs(t - dist.comm.total_recv_words) / t

        assert rel_gap(128, 16, 4) < rel_gap(128, 4, 1)


class TestCholeskyParity:
    @pytest.mark.parametrize("n,p,v,c", GRID)
    def test_total_recv_words(self, rng, n, p, v, c):
        trace, dist, _ = chol_pair(n, p, v, c, rng)
        assert dist.comm.total_recv_words == pytest.approx(
            trace.comm.total_recv_words, rel=PARITY_RTOL)

    @pytest.mark.parametrize("n,p,v,c", EDGE)
    def test_total_recv_words_edge(self, rng, n, p, v, c):
        trace, dist, _ = chol_pair(n, p, v, c, rng)
        assert dist.comm.total_recv_words == pytest.approx(
            trace.comm.total_recv_words, rel=PARITY_RTOL_EDGE)

    @pytest.mark.parametrize("n,p,v,c", GRID)
    def test_counted_run_stays_numerically_exact(self, rng, n, p, v, c):
        _, dist, a = chol_pair(n, p, v, c, rng)
        err = np.linalg.norm(a - dist.lower @ dist.lower.T)
        assert err / np.linalg.norm(a) < 1e-12

    def test_lu_and_cholesky_counted_volumes_comparable(self, rng):
        """Table 1: Cholesky communicates about as much as LU — also in
        the counted (not just analytic) volumes."""
        _, lu, _ = lu_pair(128, 8, 8, 2, rng)
        _, ch, _ = chol_pair(128, 8, 8, 2, rng)
        assert ch.comm.total_recv_words == pytest.approx(
            lu.comm.total_recv_words, rel=0.35)
