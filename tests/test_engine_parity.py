"""Trace-vs-distributed parity: the analytic accounting must agree with
counted execution — for *every* schedule in the engine.

The paper's central empirical claim is that the *measured* per-rank I/O
of COnfLUX/COnfCHOX matches the analytic near-optimal cost, and that
the 2D baselines measurably move more.  The engine makes both claims
checkable in-repo: the trace backend produces the analytic volumes, the
distributed backend counts words actually moved by Machine collectives,
and the totals must agree for all five schedules (conflux, confchox,
matmul25d, scalapack-lu, scalapack-chol).

Documented tolerances: the analytic models deliberately idealize a few
things the executable schedules do not —

* every rank is charged its full ``1/P`` share of the 1D panel
  scatters and piece distributions (COnfLUX steps 4, 6, 8, 10), while
  pieces already resident at their destination move zero words — a
  relative ``O(1/P)`` over-count that is negligible at paper scale but
  visible on the tiny machines these tests can afford;
* the COnfLUX A00 broadcast is charged at every rank of the
  communicator including the root, while the machine counts ``g - 1``
  receivers.  The 2D and SUMMA traces charge ``g - 1`` receivers
  exactly (the broadcast-root fix): the SUMMA and 2D-Cholesky traces
  now match the counted volumes to rounding, and the 2D-LU gap is down
  to its pivoting idealizations;
* COnfLUX step 8 spreads ``nrem`` masked rows where the machine moves
  the ``n11 = nrem - v`` actual Schur rows (an edge term per step);
* the tournament charges ``min(Pr, N/v, nrem)`` active participants
  (exact whp — :func:`repro.engine.accounting.butterfly_pair_exchanges`),
  while late steps may cluster the surviving rows on fewer fiber roots
  and exchange blocks shorter than ``v`` rows;
* the 2D LU trace charges ``nb`` pivot swaps per panel at the whp rate
  ``(Pr-1)/Pr``, while an actual run swaps only where the argmax landed
  (on diagonally dominant inputs: never — the 2D parity rows therefore
  factor generic matrices, with pivoting fully engaged); its
  eliminating-row broadcasts assume every column rank still holds
  active rows, which late panel columns need not.

Every idealization *over*-counts, so the measured volume sits below the
trace; the gap shrinks with both the step count and the machine size,
which the asymptotic tests assert.  Sent words are *not* compared: the
trace attributes sent words only for the reductions and broadcasts
(received words are the paper's primary metric), so there is no
analytic sent total to match.

This suite also absorbs the retired ``distributed2d`` module's checks:
the 2D distributed factors must match the dense backend's numerically
identical elimination (bit-for-bit up to BLAS shape-dependent rounding)
and the final stores may hold only tiles their rank owns.
"""

import numpy as np
import pytest

from repro.engine import DenseBackend, DistributedBackend, TraceBackend
from repro.factorizations import (
    ConfchoxSchedule,
    ConfluxSchedule,
    Matmul25DSchedule,
)
from repro.factorizations.baselines.scalapack_chol import (
    ScalapackCholeskySchedule,
)
from repro.factorizations.baselines.scalapack_lu import ScalapackLUSchedule

#: Relative tolerance for total received words, trace vs counted, on
#: 2.5D grids with at least 8 ranks and at least 8 panel steps.  The
#: exact tournament accounting (butterfly_pair_exchanges) brought this
#: down from the 0.20 the rounds-at-every-rank idealization needed.
PARITY_RTOL = 0.15

#: Small machines (P <= 6 or c = 1) and tiny step counts see the
#: O(1/P) local-share idealization at full strength.
PARITY_RTOL_EDGE = 0.34

#: 2D ScaLAPACK LU on generic (pivoting-active) inputs: broadcasts are
#: charged at g-1 receivers now, so what remains is the whp swap-rate
#: charge and the eliminating-row/edge idealizations.
PARITY_RTOL_2D = 0.13

#: 2D Cholesky: broadcast roots fixed and no pivot terms — the trace
#: matches the counted volume to cyclic rounding.
PARITY_RTOL_2D_CHOL = 0.02

#: 2.5D SUMMA: panel rings and the layered reduce-scatter are counted
#: identically by trace and machine (g-1 receivers everywhere).
PARITY_RTOL_SUMMA = 0.02

GRID = [
    # (n, p, v, c) — P >= 8, at least 8 panel steps each
    (64, 8, 8, 2),
    (96, 12, 12, 3),
    (128, 8, 8, 2),
    (128, 16, 16, 4),
]

EDGE = [(32, 4, 8, 1), (48, 6, 8, 2), (64, 4, 8, 1), (128, 4, 8, 1)]

GRID_2D = [(96, 16, 8), (128, 16, 16), (128, 36, 8)]

GRID_SUMMA = [(128, 32, 8, 2), (128, 64, 8, 4), (128, 128, 8, 2)]


def lu_pair(n, p, v, c, rng):
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    trace = TraceBackend().run(ConfluxSchedule(n, p, v=v, c=c))
    dist = DistributedBackend().run(ConfluxSchedule(n, p, v=v, c=c), a=a)
    return trace, dist, a


def chol_pair(n, p, v, c, rng):
    g = rng.standard_normal((n, n))
    a = g @ g.T + n * np.eye(n)
    trace = TraceBackend().run(ConfchoxSchedule(n, p, v=v, c=c))
    dist = DistributedBackend().run(ConfchoxSchedule(n, p, v=v, c=c), a=a)
    return trace, dist, a


def lu2d_sched(n, p, nb):
    return ScalapackLUSchedule(n, p, nb=nb, panel_rebroadcast=False)


def lu2d_pair(n, p, nb, rng):
    a = rng.standard_normal((n, n))      # generic: pivoting engages
    trace = TraceBackend().run(lu2d_sched(n, p, nb))
    dist = DistributedBackend().run(lu2d_sched(n, p, nb), a=a)
    return trace, dist, a


def chol2d_pair(n, p, nb, rng):
    g = rng.standard_normal((n, n))
    a = g @ g.T + n * np.eye(n)
    trace = TraceBackend().run(ScalapackCholeskySchedule(n, p, nb=nb))
    dist = DistributedBackend().run(ScalapackCholeskySchedule(n, p, nb=nb),
                                    a=a)
    return trace, dist, a


def summa_pair(n, p, s, c, rng):
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    trace = TraceBackend().run(Matmul25DSchedule(n, p, s=s, c=c))
    dist = DistributedBackend().run(Matmul25DSchedule(n, p, s=s, c=c),
                                    a=(a, b))
    return trace, dist, a, b


class TestEveryScheduleDistributed:
    """The backend abstraction is total: all five schedules run
    message-passing, which is what makes the baseline comparison a
    same-execution-model comparison."""

    def test_all_schedules_support_distributed(self):
        schedules = [
            ConfluxSchedule(32, 4, v=8, c=1),
            ConfchoxSchedule(32, 4, v=8, c=1),
            Matmul25DSchedule(32, 4, s=8, c=1),
            ScalapackLUSchedule(32, 4, nb=8),
            ScalapackCholeskySchedule(32, 4, nb=8),
        ]
        assert all(s.supports_distributed for s in schedules)


class TestLUParity:
    @pytest.mark.parametrize("n,p,v,c", GRID)
    def test_total_recv_words(self, rng, n, p, v, c):
        trace, dist, _ = lu_pair(n, p, v, c, rng)
        assert dist.comm.total_recv_words == pytest.approx(
            trace.comm.total_recv_words, rel=PARITY_RTOL)

    @pytest.mark.parametrize("n,p,v,c", EDGE)
    def test_total_recv_words_edge(self, rng, n, p, v, c):
        trace, dist, _ = lu_pair(n, p, v, c, rng)
        assert dist.comm.total_recv_words == pytest.approx(
            trace.comm.total_recv_words, rel=PARITY_RTOL_EDGE)

    @pytest.mark.parametrize("n,p,v,c", GRID)
    def test_counted_run_stays_numerically_exact(self, rng, n, p, v, c):
        _, dist, a = lu_pair(n, p, v, c, rng)
        err = np.linalg.norm(a[dist.perm] - dist.lower @ dist.upper)
        assert err / np.linalg.norm(a) < 1e-12

    def test_trace_overcounts(self, rng):
        """Every trace idealization over-counts (module docstring), so
        the counted volume must sit at or below the analytic one."""
        for n, p, v, c in GRID:
            trace, dist, _ = lu_pair(n, p, v, c, rng)
            assert (dist.comm.total_recv_words
                    <= trace.comm.total_recv_words * 1.001)

    def test_gap_shrinks_with_step_count(self, rng):
        """The trace-vs-counted gap is a lower-order edge effect: more
        panel steps at fixed (P, v, c) must shrink the relative gap."""
        def rel_gap(n):
            trace, dist, _ = lu_pair(n, 8, 8, 2, rng)
            t = trace.comm.total_recv_words
            return abs(t - dist.comm.total_recv_words) / t

        assert rel_gap(160) < rel_gap(48)

    def test_gap_shrinks_with_machine_size(self, rng):
        """The 1/P local-share idealization fades as P grows at fixed
        steps-per-rank shape."""
        def rel_gap(n, p, c):
            trace, dist, _ = lu_pair(n, p, 8, c, rng)
            t = trace.comm.total_recv_words
            return abs(t - dist.comm.total_recv_words) / t

        assert rel_gap(128, 16, 4) < rel_gap(128, 4, 1)


class TestCholeskyParity:
    @pytest.mark.parametrize("n,p,v,c", GRID)
    def test_total_recv_words(self, rng, n, p, v, c):
        trace, dist, _ = chol_pair(n, p, v, c, rng)
        assert dist.comm.total_recv_words == pytest.approx(
            trace.comm.total_recv_words, rel=PARITY_RTOL)

    @pytest.mark.parametrize("n,p,v,c", EDGE)
    def test_total_recv_words_edge(self, rng, n, p, v, c):
        trace, dist, _ = chol_pair(n, p, v, c, rng)
        assert dist.comm.total_recv_words == pytest.approx(
            trace.comm.total_recv_words, rel=PARITY_RTOL_EDGE)

    @pytest.mark.parametrize("n,p,v,c", GRID)
    def test_counted_run_stays_numerically_exact(self, rng, n, p, v, c):
        _, dist, a = chol_pair(n, p, v, c, rng)
        err = np.linalg.norm(a - dist.lower @ dist.lower.T)
        assert err / np.linalg.norm(a) < 1e-12

    def test_lu_and_cholesky_counted_volumes_comparable(self, rng):
        """Table 1: Cholesky communicates about as much as LU — also in
        the counted (not just analytic) volumes."""
        _, lu, _ = lu_pair(128, 8, 8, 2, rng)
        _, ch, _ = chol_pair(128, 8, 8, 2, rng)
        assert ch.comm.total_recv_words == pytest.approx(
            lu.comm.total_recv_words, rel=0.35)


class TestScalapackLUParity:
    """The 2D baseline through the same execution model — absorbing the
    retired distributed2d module's ground-truth checks, now with real
    partial pivoting instead of the old block-diagonal restriction."""

    @pytest.mark.parametrize("n,p,nb", GRID_2D)
    def test_total_recv_words(self, rng, n, p, nb):
        trace, dist, _ = lu2d_pair(n, p, nb, rng)
        assert dist.comm.total_recv_words == pytest.approx(
            trace.comm.total_recv_words, rel=PARITY_RTOL_2D)

    @pytest.mark.parametrize("n,p,nb", GRID_2D)
    def test_trace_overcounts(self, rng, n, p, nb):
        trace, dist, _ = lu2d_pair(n, p, nb, rng)
        assert (dist.comm.total_recv_words
                <= trace.comm.total_recv_words * 1.001)

    @pytest.mark.parametrize("n,p,nb", GRID_2D)
    def test_counted_run_stays_numerically_exact(self, rng, n, p, nb):
        _, dist, a = lu2d_pair(n, p, nb, rng)
        err = np.linalg.norm(a[dist.perm] - dist.lower @ dist.upper)
        assert err / np.linalg.norm(a) < 1e-11

    def test_pivoting_engages_on_generic_input(self, rng):
        _, dist, _ = lu2d_pair(96, 16, 8, rng)
        assert np.any(dist.perm != np.arange(96))

    def test_factors_match_dense_backend(self, rng):
        """Same elimination arithmetic, two execution models: on a
        dominant input (deterministic pivots) the distributed factors
        equal the dense backend's to rounding."""
        n, p, nb = 64, 16, 8
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        dense = DenseBackend().run(lu2d_sched(n, p, nb), a=a)
        dist = DistributedBackend().run(lu2d_sched(n, p, nb), a=a)
        assert np.array_equal(dense.perm, dist.perm)
        assert np.max(np.abs(dense.lower - dist.lower)) < 1e-10
        assert np.max(np.abs(dense.upper - dist.upper)) < 1e-10

    def test_final_stores_hold_only_owned_tiles(self, rng):
        """No rank may end up holding data it does not own: the
        distributed contract the accounting layer abstracts away."""
        from repro.layouts import BlockCyclicLayout
        from repro.machine import Machine

        n, p, nb = 64, 4, 8
        sched = lu2d_sched(n, p, nb)
        machine = Machine(p)
        a = rng.standard_normal((n, n))
        DistributedBackend(machine).run(sched, a=a)
        lay = BlockCyclicLayout(n, n, nb, nb, sched.grid.layer_grid())
        for rank in range(p):
            for key in list(machine.store(rank).keys()):
                _, bi, bj = key
                assert lay.owner_rank(bi, bj) == rank, \
                    f"rank {rank} still holds foreign tile {key}"

    def test_single_rank_no_communication(self, rng):
        from repro.machine import Machine

        machine = Machine(1)
        a = rng.standard_normal((32, 32))
        DistributedBackend(machine).run(lu2d_sched(32, 1, 8), a=a)
        assert machine.stats.total_recv_words == 0

    def test_volume_scales_like_2d(self, rng):
        """Per-rank counted volume ~ N^2/sqrt(P): the 4->16 rank ratio
        lands between sqrt(4)=2 and the correction-free 2.7."""
        n, nb = 128, 16
        _, m4, _ = lu2d_pair(n, 4, nb, rng)
        _, m16, _ = lu2d_pair(n, 16, nb, rng)
        ratio = m4.comm.mean_recv_words / m16.comm.mean_recv_words
        assert 1.3 < ratio < 3.0


class TestScalapackCholParity:
    @pytest.mark.parametrize("n,p,nb", GRID_2D)
    def test_total_recv_words(self, rng, n, p, nb):
        trace, dist, _ = chol2d_pair(n, p, nb, rng)
        assert dist.comm.total_recv_words == pytest.approx(
            trace.comm.total_recv_words, rel=PARITY_RTOL_2D_CHOL)

    @pytest.mark.parametrize("n,p,nb", GRID_2D)
    def test_trace_overcounts(self, rng, n, p, nb):
        trace, dist, _ = chol2d_pair(n, p, nb, rng)
        assert (dist.comm.total_recv_words
                <= trace.comm.total_recv_words * 1.001)

    @pytest.mark.parametrize("n,p,nb", GRID_2D)
    def test_counted_run_stays_numerically_exact(self, rng, n, p, nb):
        _, dist, a = chol2d_pair(n, p, nb, rng)
        err = np.linalg.norm(a - dist.lower @ dist.lower.T)
        assert err / np.linalg.norm(a) < 1e-12

    def test_factors_match_dense_backend(self, rng):
        n, p, nb = 64, 16, 8
        g = rng.standard_normal((n, n))
        a = g @ g.T + n * np.eye(n)
        dense = DenseBackend().run(ScalapackCholeskySchedule(n, p, nb=nb),
                                   a=a)
        dist = DistributedBackend().run(ScalapackCholeskySchedule(n, p,
                                                                  nb=nb), a=a)
        assert np.max(np.abs(dense.lower - dist.lower)) < 1e-10

    def test_final_stores_hold_only_owned_lower_tiles(self, rng):
        from repro.layouts import BlockCyclicLayout
        from repro.machine import Machine

        n, p, nb = 64, 4, 8
        sched = ScalapackCholeskySchedule(n, p, nb=nb)
        machine = Machine(p)
        g = rng.standard_normal((n, n))
        DistributedBackend(machine).run(sched, a=g @ g.T + n * np.eye(n))
        lay = BlockCyclicLayout(n, n, nb, nb, sched.grid.layer_grid())
        for rank in range(p):
            for key in list(machine.store(rank).keys()):
                _, bi, bj = key
                assert bi >= bj, f"upper tile {key} stored"
                assert lay.owner_rank(bi, bj) == rank


class TestMatmulParity:
    @pytest.mark.parametrize("n,p,s,c", GRID_SUMMA)
    def test_total_recv_words(self, rng, n, p, s, c):
        trace, dist, _, _ = summa_pair(n, p, s, c, rng)
        assert dist.comm.total_recv_words == pytest.approx(
            trace.comm.total_recv_words, rel=PARITY_RTOL_SUMMA)

    @pytest.mark.parametrize("n,p,s,c", GRID_SUMMA)
    def test_trace_overcounts(self, rng, n, p, s, c):
        trace, dist, _, _ = summa_pair(n, p, s, c, rng)
        assert (dist.comm.total_recv_words
                <= trace.comm.total_recv_words * 1.001)

    @pytest.mark.parametrize("n,p,s,c", GRID_SUMMA)
    def test_counted_product_exact(self, rng, n, p, s, c):
        _, dist, a, b = summa_pair(n, p, s, c, rng)
        assert np.allclose(dist.lower, a @ b)

    def test_reduction_volume_exact(self, rng):
        """The final layered reduce-scatter is the one term both models
        count identically: with zero SUMMA rounds' worth of panels (a
        1-layer grid row/column) ... instead check c=1 has no reduce."""
        trace, dist, a, b = summa_pair(64, 16, 8, 1, rng)
        # c=1: the reduce step moves nothing in either model.
        last_trace = trace.comm.steps[-1]
        assert last_trace.recv_words_total == 0
        assert np.allclose(dist.lower, a @ b)

    def test_trace_matches_counted_exactly(self, rng):
        """With g-1 receivers charged everywhere, the SUMMA trace and
        the counted execution agree to float rounding — no residual
        idealization at any grid width."""
        for n, p, s, c in ((128, 128, 8, 2), (128, 32, 8, 2)):
            trace, dist, _, _ = summa_pair(n, p, s, c, rng)
            assert dist.comm.total_recv_words == pytest.approx(
                trace.comm.total_recv_words, rel=1e-12)
