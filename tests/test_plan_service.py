"""Tests for the plan atlas + service layer (repro.planner.atlas /
repro.planner.service) and the PlanRequest entry shape.

The load-bearing contract: any plan served from the atlas or through
the service's caches is **bit-identical** to what live planning would
produce for the same request — exact atlas hits replay the live
planner's pickled output, snapped hits replay a provably feasible
lattice neighbour, and a stale code fingerprint reads as a cold cache,
never as stale data.  Batched resolution (``plan_many``) must equal
sequential ``plan`` calls, and infeasibility must be cached and
replayed, not re-proven.
"""

import asyncio
import dataclasses
import math

import pytest

from repro.machine.perf_model import PIZ_DAINT_XC40
from repro.planner import (
    Infeasible,
    NoFeasiblePlanError,
    Plan,
    PlanAtlas,
    PlanRequest,
    PlanService,
    default_service,
    plan_batch,
    plan_cholesky,
    plan_gemm,
    plan_lu,
    plan_request,
    set_default_service,
)

#: One Piz Daint rank's memory, as in the harness.
NODE_M = 32 * 2 ** 30 / 8

#: A lattice small enough to build in milliseconds but wide enough to
#: exercise snapping (two budgets per op) and infeasibility caching
#: (the last point's budget is below N^2/P).
OPS = ("lu", "cholesky", "gemm")


def lattice() -> list[PlanRequest]:
    points = [PlanRequest(op, 4096, 64, mem, api_copies=3)
              for op in OPS for mem in (NODE_M, NODE_M / 4)]
    points += [PlanRequest(op, 16384, 64, 16384.0 ** 2 / 64 / 2,
                           api_copies=3) for op in OPS]
    return points


@pytest.fixture
def atlas(tmp_path) -> PlanAtlas:
    a = PlanAtlas(tmp_path / "atlas")
    a.build(lattice())
    return a


class TestPlanRequest:
    def test_infinite_budget_normalizes_to_none(self):
        assert (PlanRequest("lu", 4096, 64, math.inf)
                == PlanRequest("lu", 4096, 64, None))

    def test_default_impls_normalize_to_none(self):
        spelled = PlanRequest("lu", 4096, 64,
                              impls=("conflux", "scalapack"))
        assert spelled == PlanRequest("lu", 4096, 64)
        assert spelled.impls is None

    def test_restricted_impls_stay(self):
        req = PlanRequest("lu", 4096, 64, impls=["conflux"])
        assert req.impls == ("conflux",)
        assert req != PlanRequest("lu", 4096, 64)

    def test_numeric_coercion_keeps_hash_equality(self):
        a = PlanRequest("gemm", 4096.0, 64.0, 2.0 ** 20, api_copies=3.0)
        b = PlanRequest("gemm", 4096, 64, float(2 ** 20), api_copies=3)
        assert a == b and hash(a) == hash(b)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            PlanRequest("qr", 4096, 64)

    def test_budget_property(self):
        assert PlanRequest("lu", 4096, 64).budget == math.inf
        assert PlanRequest("lu", 4096, 64, NODE_M).budget == NODE_M

    def test_token_distinguishes_every_field(self):
        base = PlanRequest("lu", 4096, 64, NODE_M, api_copies=3)
        variants = [
            PlanRequest("cholesky", 4096, 64, NODE_M, api_copies=3),
            PlanRequest("lu", 8192, 64, NODE_M, api_copies=3),
            PlanRequest("lu", 4096, 256, NODE_M, api_copies=3),
            PlanRequest("lu", 4096, 64, NODE_M / 2, api_copies=3),
            PlanRequest("lu", 4096, 64, NODE_M, api_copies=4),
            PlanRequest("lu", 4096, 64, NODE_M, api_copies=3,
                        impls=("conflux",)),
        ]
        tokens = {base.token()} | {v.token() for v in variants}
        assert len(tokens) == 1 + len(variants)


class TestPlanRequestRouting:
    """plan_request / plan_batch vs the historical plan_* wrappers."""

    def test_wrappers_equal_request_path(self):
        assert (plan_lu(4096, 64, mem_words=NODE_M, api_copies=3)
                == plan_request(PlanRequest("lu", 4096, 64, NODE_M,
                                            api_copies=3)))
        assert (plan_cholesky(4096, 64, mem_words=NODE_M, api_copies=3)
                == plan_request(PlanRequest("cholesky", 4096, 64, NODE_M,
                                            api_copies=3)))
        assert (plan_gemm(4096, 64, mem_words=NODE_M, api_copies=3)
                == plan_request(PlanRequest("gemm", 4096, 64, NODE_M,
                                            api_copies=3)))

    def test_batch_bit_identical_to_sequential(self):
        requests = [r for r in lattice() if r.n == 4096]
        batched = plan_batch(requests)
        assert batched == [plan_request(r) for r in requests]

    def test_batch_strict_false_marks_infeasible_slots(self):
        requests = [PlanRequest("lu", 4096, 64, NODE_M, api_copies=3),
                    PlanRequest("lu", 16384, 64, 100.0, api_copies=3)]
        plans = plan_batch(requests, strict=False)
        assert isinstance(plans[0], Plan)
        assert plans[1] is None

    def test_batch_strict_raises(self):
        with pytest.raises(NoFeasiblePlanError):
            plan_batch([PlanRequest("lu", 16384, 64, 100.0)])


class TestAtlas:
    def test_exact_hit_bit_identical_to_live(self, atlas):
        for req in lattice()[:6]:
            assert atlas.get(req) == plan_request(req)

    def test_miss_returns_none(self, atlas):
        assert atlas.get(PlanRequest("lu", 8192, 64, NODE_M)) is None

    def test_build_is_resumable(self, atlas):
        stats = atlas.build(lattice())
        assert stats.built == 0
        assert stats.reused == stats.points == len(lattice())

    def test_incremental_build_extends_manifest(self, atlas):
        extra = PlanRequest("lu", 8192, 256, NODE_M, api_copies=3)
        before = len(atlas.manifest())
        stats = atlas.build([extra])
        assert stats.built == 1
        assert len(atlas.manifest()) == before + 1
        assert atlas.get(extra) == plan_request(extra)

    def test_infeasible_point_stored_as_marker(self, atlas):
        req = PlanRequest("lu", 16384, 64, 16384.0 ** 2 / 64 / 2,
                          api_copies=3)
        stored = atlas.get(req)
        assert isinstance(stored, Infeasible)
        assert "16384" in stored.message

    def test_stale_fingerprint_reads_cold(self, tmp_path):
        root = tmp_path / "atlas"
        req = PlanRequest("lu", 4096, 64, NODE_M, api_copies=3)
        PlanAtlas(root, fingerprint="v1").build([req])
        stale = PlanAtlas(root, fingerprint="v2")
        assert stale.get(req) is None
        assert stale.manifest() == ()
        # The original fingerprint still reads warm.
        assert PlanAtlas(root, fingerprint="v1").get(req) is not None

    def test_snap_candidates_dominated_and_sorted(self, atlas):
        # Off-lattice budget between the two lu lattice budgets: only
        # the smaller lattice point dominates (NODE_M does not fit).
        query = PlanRequest("lu", 4096, 64, NODE_M / 2, api_copies=3)
        cands = atlas.snap_candidates(query)
        assert cands == [PlanRequest("lu", 4096, 64, NODE_M / 4,
                                     api_copies=3)]
        # A budget above both lattice points sees both, largest first.
        wide = atlas.snap_candidates(
            PlanRequest("lu", 4096, 64, 2 * NODE_M, api_copies=3))
        assert [c.mem_words for c in wide] == [NODE_M, NODE_M / 4]

    def test_snap_candidates_respect_identity_fields(self, atlas):
        # Different api_copies (or op, n, p) is a different question.
        assert atlas.snap_candidates(
            PlanRequest("lu", 4096, 64, NODE_M / 2, api_copies=4)) == []
        assert atlas.snap_candidates(
            PlanRequest("lu", 4096, 128, NODE_M / 2, api_copies=3)) == []


class TestServiceResolution:
    def test_lru_counters(self):
        service = PlanService()
        req = PlanRequest("lu", 4096, 64, NODE_M, api_copies=3)
        first = service.plan(req)
        assert (service.stats.lru_misses, service.stats.live_plans) == (1, 1)
        second = service.plan(req)
        assert service.stats.lru_hits == 1
        assert service.stats.live_plans == 1   # no re-planning
        assert first == second == plan_request(req)
        assert service.stats.served == 2
        assert service.stats.hit_rate == 0.5

    def test_atlas_hit_bit_identical_and_counted(self, atlas):
        service = PlanService(atlas=atlas)
        req = PlanRequest("cholesky", 4096, 64, NODE_M, api_copies=3)
        assert service.plan(req) == plan_request(req)
        assert service.stats.atlas_hits == 1
        assert service.stats.live_plans == 0

    def test_snap_serves_dominated_lattice_plan(self, atlas):
        service = PlanService(atlas=atlas)
        query = PlanRequest("lu", 4096, 64, NODE_M / 2, api_copies=3)
        served = service.plan(query)
        assert service.stats.atlas_snaps == 1
        assert service.stats.live_plans == 0
        lattice_point = PlanRequest("lu", 4096, 64, NODE_M / 4,
                                    api_copies=3)
        assert served == atlas.get(lattice_point)
        # Deterministic: a second fresh service snaps identically.
        assert PlanService(atlas=atlas).plan(query) == served

    def test_snap_below_lattice_falls_back_live(self, atlas):
        service = PlanService(atlas=atlas)
        query = PlanRequest("lu", 4096, 64, NODE_M / 8, api_copies=3)
        assert service.plan(query) == plan_request(query)
        assert service.stats.live_plans == 1
        assert service.stats.atlas_snaps == 0

    def test_snap_disabled_goes_live(self, atlas):
        service = PlanService(atlas=atlas, snap=False)
        query = PlanRequest("lu", 4096, 64, NODE_M / 2, api_copies=3)
        assert service.plan(query) == plan_request(query)
        assert service.stats.live_plans == 1

    def test_snap_never_serves_infeasible_marker(self, atlas):
        """An infeasible smaller budget proves nothing about a larger
        one: the snap loop must skip the marker and plan live."""
        service = PlanService(atlas=atlas)
        query = PlanRequest("lu", 16384, 64, NODE_M, api_copies=3)
        assert isinstance(service.plan(query), Plan)
        assert service.stats.live_plans == 1

    def test_exact_infeasible_hit_replays_without_planning(self, atlas):
        service = PlanService(atlas=atlas)
        req = PlanRequest("lu", 16384, 64, 16384.0 ** 2 / 64 / 2,
                          api_copies=3)
        with pytest.raises(NoFeasiblePlanError):
            service.plan(req)
        assert service.stats.live_plans == 0

    def test_infeasibility_cached_in_lru(self):
        service = PlanService()
        req = PlanRequest("lu", 16384, 64, 100.0)
        for _ in range(2):
            with pytest.raises(NoFeasiblePlanError):
                service.plan(req)
        assert service.stats.live_plans == 1

    def test_lru_eviction(self):
        service = PlanService(lru_size=2)
        reqs = [PlanRequest("lu", 4096, 64, NODE_M, api_copies=k)
                for k in range(3)]
        for req in reqs:
            service.plan(req)
        assert len(service) == 2
        service.plan(reqs[0])               # evicted: plans live again
        assert service.stats.live_plans == 4

    def test_cache_clear(self):
        service = PlanService()
        req = PlanRequest("lu", 4096, 64, NODE_M)
        service.plan(req)
        service.cache_clear()
        assert len(service) == 0
        service.plan(req)
        assert service.stats.live_plans == 2

    def test_mismatched_machine_params_rejected(self, atlas):
        other = dataclasses.replace(
            PIZ_DAINT_XC40, latency_s=PIZ_DAINT_XC40.latency_s * 2)
        with pytest.raises(ValueError, match="machine_params"):
            PlanService(atlas=atlas, machine_params=other)


class TestPlanMany:
    def test_equals_sequential_plans(self, atlas):
        requests = [r for r in lattice() if r.n == 4096]
        batch = PlanService(atlas=atlas).plan_many(requests)
        sequential = PlanService(atlas=atlas)
        assert batch == [sequential.plan(r) for r in requests]

    def test_equals_sequential_without_atlas(self):
        requests = [r for r in lattice() if r.n == 4096]
        batch = PlanService().plan_many(requests)
        sequential = PlanService()
        assert batch == [sequential.plan(r) for r in requests]

    def test_duplicates_resolve_once(self):
        service = PlanService()
        req = PlanRequest("lu", 4096, 64, NODE_M, api_copies=3)
        plans = service.plan_many([req, req, req])
        assert plans[0] == plans[1] == plans[2]
        assert service.stats.live_plans == 1

    def test_raises_at_earliest_infeasible(self):
        service = PlanService()
        with pytest.raises(NoFeasiblePlanError, match="16384"):
            service.plan_many([
                PlanRequest("lu", 4096, 64, NODE_M, api_copies=3),
                PlanRequest("lu", 16384, 64, 100.0),
            ])
        # The feasible member was still planned and cached.
        assert service.stats.live_plans == 2


class TestAsync:
    def test_plan_async(self, atlas):
        service = PlanService(atlas=atlas)
        req = PlanRequest("lu", 4096, 64, NODE_M, api_copies=3)
        assert asyncio.run(service.plan_async(req)) == plan_request(req)

    def test_plan_many_async(self):
        service = PlanService()
        requests = [PlanRequest(op, 4096, 64, NODE_M, api_copies=3)
                    for op in OPS]
        plans = asyncio.run(service.plan_many_async(requests))
        assert plans == [plan_request(r) for r in requests]


class TestConcurrency:
    """The service's state sits behind one lock: overlapping awaits of
    the same request must live-plan it exactly once and keep the
    counters consistent — no torn LRU, no double planning."""

    def test_concurrent_same_request_plans_once(self, monkeypatch):
        import time

        from repro.planner import service as service_mod

        calls = []
        real_plan_batch = service_mod.plan_batch

        def slow_plan_batch(requests, **kwargs):
            calls.append(tuple(requests))
            # Widen the race window: without the lock, every waiter
            # reaches live planning before the first answer lands.
            time.sleep(0.02)
            return real_plan_batch(requests, **kwargs)

        monkeypatch.setattr(service_mod, "plan_batch", slow_plan_batch)
        service = PlanService()
        req = PlanRequest("lu", 4096, 64, NODE_M, api_copies=3)

        async def fan_out():
            return await asyncio.gather(
                *(service.plan_async(req) for _ in range(8)))

        plans = asyncio.run(fan_out())
        assert len(calls) == 1
        assert all(p == plans[0] for p in plans)
        assert plans[0] == plan_request(req)
        assert service.stats.live_plans == 1
        assert service.stats.lru_hits == 7
        assert service.stats.served == 8

    def test_concurrent_overlapping_batches_consistent(self):
        service = PlanService()
        requests = [PlanRequest(op, 4096, 64, NODE_M, api_copies=3)
                    for op in OPS]

        async def fan_out():
            return await asyncio.gather(
                *(service.plan_many_async(requests) for _ in range(6)))

        batches = asyncio.run(fan_out())
        expected = [plan_request(r) for r in requests]
        assert all(batch == expected for batch in batches)
        # Each unique request was live-planned exactly once, whatever
        # the interleaving; every other resolution hit the LRU.
        assert service.stats.live_plans == len(requests)
        assert service.stats.served == 6 * len(requests)


class TestAtlasBuildDedupe:
    def test_duplicate_lattice_points_planned_once(self, tmp_path):
        """Regression: a lattice spelled with repeats (easy to produce
        from nested sweep loops) used to inflate the build stats and
        re-plan the duplicates."""
        atlas = PlanAtlas(tmp_path / "atlas")
        req = PlanRequest("lu", 4096, 64, NODE_M, api_copies=3)
        other = PlanRequest("cholesky", 4096, 64, NODE_M, api_copies=3)
        stats = atlas.build([req, other, req, req, other])
        assert stats.points == 2
        assert stats.built == 2
        assert stats.reused == 0
        assert len(atlas.manifest()) == 2
        assert atlas.get(req) == plan_request(req)


class TestDefaultService:
    def test_created_on_first_use_and_replaceable(self):
        previous = set_default_service(None)
        try:
            created = default_service()
            assert isinstance(created, PlanService)
            assert default_service() is created
            mine = PlanService(lru_size=8)
            assert set_default_service(mine) is created
            assert default_service() is mine
        finally:
            set_default_service(previous)
