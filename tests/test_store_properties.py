"""Property-based tests (hypothesis) for RankStore accounting.

The store is the paper's private fast memory of ``M`` words; its word
accounting feeds both the memory-enforcement invariant
(``tests/test_memory_enforcement.py``) and the engine's memory reports,
so it must be exact under arbitrary ``put``/``pop``/``discard``
interleavings:

* ``words`` always equals the summed size of the live blocks;
* ``peak_words`` is monotone non-decreasing and an upper bound on
  ``words`` (run-wide), ``step_peak_words`` likewise within a step;
* under an enforced capacity, ``words`` never exceeds it — a rejected
  ``put``/``reserve`` leaves the store exactly as it was.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import MemoryBudgetExceeded, RankStore

#: One random store operation: (op, key, block words).
_ops = st.lists(
    st.tuples(st.sampled_from(["put", "pop", "discard", "reserve"]),
              st.integers(0, 5),          # key space small: forces replaces
              st.integers(0, 40)),        # block size in words
    min_size=0, max_size=60)


def _apply(store: RankStore, ops, live: dict) -> None:
    """Mirror the op sequence into the store and a model dict."""
    for op, key, size in ops:
        if op == "put":
            try:
                store.put(key, np.zeros(size))
                live[key] = size
            except MemoryBudgetExceeded:
                pass                       # rejected: model unchanged
        elif op == "pop" and key in live:
            store.pop(key)
            del live[key]
        elif op == "discard":
            store.discard(key)
            live.pop(key, None)
        elif op == "reserve":
            try:
                store.reserve(size)
            except MemoryBudgetExceeded:
                pass                       # never mutates either way


class TestAccountingExactness:
    @given(ops=_ops)
    @settings(max_examples=100, deadline=None)
    def test_words_equals_sum_of_live_blocks(self, ops):
        store = RankStore(0)
        live: dict[int, int] = {}
        _apply(store, ops, live)
        assert store.words == sum(live.values())
        assert len(store) == len(live)
        assert {k: v.size for k, v in store.items()} == live

    @given(ops=_ops)
    @settings(max_examples=100, deadline=None)
    def test_peak_monotone_and_bounds_words(self, ops):
        store = RankStore(0)
        live: dict[int, int] = {}
        peaks = []
        for step in range(0, len(ops), 10):
            _apply(store, ops[step:step + 10], live)
            peaks.append(store.peak_words)
            assert store.peak_words >= store.words
        assert peaks == sorted(peaks)      # monotone non-decreasing

    @given(ops=_ops)
    @settings(max_examples=100, deadline=None)
    def test_pop_returns_what_put_stored(self, ops):
        store = RankStore(0)
        live: dict[int, int] = {}
        _apply(store, ops, live)
        for key, size in list(live.items()):
            assert store.pop(key).size == size
        assert store.words == 0


class TestEnforcedCapacity:
    @given(ops=_ops, capacity=st.integers(1, 120))
    @settings(max_examples=100, deadline=None)
    def test_capacity_never_exceeded(self, ops, capacity):
        store = RankStore(3, capacity_words=capacity)
        live: dict[int, int] = {}
        _apply(store, ops, live)
        assert store.words <= capacity
        assert store.peak_words <= capacity
        assert store.words == sum(live.values())

    @given(size=st.integers(1, 50), capacity=st.integers(1, 30))
    @settings(max_examples=60, deadline=None)
    def test_rejected_put_leaves_store_intact(self, size, capacity):
        store = RankStore(1, capacity_words=capacity)
        store.put("base", np.zeros(min(size, capacity)))
        before = (store.words, store.peak_words, set(store.keys()))
        overflow = capacity - store.words + 1
        with pytest.raises(MemoryBudgetExceeded) as exc_info:
            store.put("big", np.zeros(store.words + overflow))
        assert (store.words, store.peak_words, set(store.keys())) == before
        assert exc_info.value.rank == 1
        assert exc_info.value.key == "big"

    @given(capacity=st.integers(1, 50))
    @settings(max_examples=60, deadline=None)
    def test_replace_accounts_delta_not_sum(self, capacity):
        """Replacing a block under the same key charges only the size
        delta: a full-capacity block may be replaced in place."""
        store = RankStore(0, capacity_words=capacity)
        store.put("a", np.zeros(capacity))
        store.put("a", np.zeros(capacity))   # same size: fits
        assert store.words == capacity
        with pytest.raises(MemoryBudgetExceeded):
            store.put("a", np.zeros(capacity + 1))
        assert store.get("a").size == capacity


class TestStepPeaks:
    @given(sizes=st.lists(st.integers(0, 30), min_size=1, max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_step_peak_resets_to_resident(self, sizes):
        store = RankStore(0)
        for i, size in enumerate(sizes):
            store.put(("t", i), np.zeros(size))
            store.pop(("t", i))
        resident = store.words
        store.begin_step("s")
        assert store.step_peak_words == resident
        store.put("x", np.zeros(7))
        assert store.step_peak_words == resident + 7
        assert store.end_step() == resident + 7
        assert store.step is None

    def test_step_label_attached_to_violation(self):
        store = RankStore(2, capacity_words=10)
        store.begin_step("k=3")
        with pytest.raises(MemoryBudgetExceeded) as exc_info:
            store.put("blk", np.zeros(11))
        assert exc_info.value.step == "k=3"
        assert "k=3" in str(exc_info.value)

    def test_reserve_checks_without_storing(self):
        store = RankStore(0, capacity_words=10)
        store.reserve(10)                   # fits: no-op
        assert store.words == 0
        store.put("a", np.zeros(4))
        with pytest.raises(MemoryBudgetExceeded):
            store.reserve(7)
        store.reserve(6)
        with pytest.raises(ValueError):
            store.reserve(-1)
