"""Tests for the X-partition-guided blocked schedules."""

import math

import pytest

from repro.lowerbounds import derive_matmul_bound
from repro.pebbles import (
    PebbleGame,
    blocked_matmul_schedule,
    matmul_cdag,
    optimal_block_side,
    run_blocked_matmul,
    run_greedy,
)


class TestOptimalBlockSide:
    def test_working_set_fits(self):
        for m in (9, 16, 27, 64, 100, 500):
            b = optimal_block_side(m)
            assert b * b + 2 * b + 1 <= m or b == 1

    def test_scales_as_sqrt_m(self):
        assert optimal_block_side(400) == pytest.approx(
            math.sqrt(400), abs=2)

    def test_minimum_memory(self):
        with pytest.raises(ValueError):
            optimal_block_side(3)


class TestBlockedSchedule:
    @pytest.mark.parametrize("n,m", [(6, 16), (8, 27), (9, 27), (12, 48)])
    def test_valid_and_complete(self, n, m):
        game = run_blocked_matmul(n, m)
        assert game.finished()
        assert game.max_red <= m

    def test_io_formula_when_blocks_divide(self):
        """With b | n the cost is exactly 2n^3/b + 2n^2."""
        n, m = 8, 27  # b = 4 divides 8
        b = optimal_block_side(m)
        assert n % b == 0
        game = run_blocked_matmul(n, m)
        assert game.io_cost == 2 * n ** 3 / b + 2 * n * n

    def test_respects_lower_bound(self):
        for n, m in [(8, 27), (12, 48), (16, 80)]:
            q = run_blocked_matmul(n, m).io_cost
            bound = derive_matmul_bound(n, m).sequential_bound
            assert q >= bound

    def test_beats_greedy(self):
        """The X-partition hint buys a real improvement over Belady
        caching without blocking."""
        for n, m in [(12, 48), (16, 80)]:
            blocked = run_blocked_matmul(n, m).io_cost
            greedy = run_greedy(matmul_cdag(n), m).io_cost
            assert blocked < greedy

    def test_approaches_bound_constant(self):
        """blocked/bound = sqrt(M)/b + sqrt(M)/n -> sqrt(M)/(sqrt(M)-1)
        as n grows at fixed M: the schedule matches the bound's leading
        *constant*, not just its order.  At M=121 (b=10 divides both n):
        n=20 gives 1.65, n=40 gives 1.375, asymptote 1.1."""
        m = 121
        r20 = (run_blocked_matmul(20, m).io_cost
               / derive_matmul_bound(20, m).sequential_bound)
        r40 = (run_blocked_matmul(40, m).io_cost
               / derive_matmul_bound(40, m).sequential_bound)
        assert r40 < r20
        assert r40 < 1.45

    def test_explicit_block_side(self):
        game = run_blocked_matmul(8, 80, block=2)
        assert game.finished()

    def test_invalid_block(self):
        with pytest.raises(ValueError):
            blocked_matmul_schedule(4, 27, block=10)

    def test_schedule_replayable(self):
        """The emitted schedule is a plain move list: replaying it on a
        fresh game gives identical cost."""
        n, m = 8, 27
        moves = blocked_matmul_schedule(n, m)
        g1 = PebbleGame(matmul_cdag(n), m)
        g1.run(moves)
        g2 = PebbleGame(matmul_cdag(n), m)
        g2.run(moves)
        assert g1.io_cost == g2.io_cost
