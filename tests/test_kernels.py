"""Unit tests for the local kernels (repro.kernels)."""

import numpy as np
import pytest
import scipy.linalg

from repro.kernels import (
    KernelError,
    SingularMatrixError,
    cholesky_flops,
    gemm,
    gemm_flops,
    gemmt,
    gemmt_flops,
    getrf,
    getrf_flops,
    laswp,
    lu_flops,
    pivots_to_permutation,
    potrf,
    potrf_flops,
    trsm,
    trsm_flops,
)


class TestGemm:
    def test_product(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        out, fl = gemm(a, b)
        assert np.allclose(out, a @ b)
        assert fl == gemm_flops(3, 5, 4) == 120

    def test_accumulate(self, rng):
        a = rng.standard_normal((3, 3))
        b = rng.standard_normal((3, 3))
        c = rng.standard_normal((3, 3))
        out, _ = gemm(a, b, c, alpha=2.0, beta=-1.0)
        assert np.allclose(out, 2 * a @ b - c)

    def test_shape_mismatch(self):
        with pytest.raises(KernelError):
            gemm(np.zeros((2, 3)), np.zeros((2, 3)))
        with pytest.raises(KernelError):
            gemm(np.zeros((2, 3)), np.zeros((3, 2)), c=np.zeros((3, 3)))

    def test_rejects_1d(self):
        with pytest.raises(KernelError):
            gemm(np.zeros(3), np.zeros((3, 2)))


class TestGemmt:
    def test_lower_triangle_only(self, rng):
        a = rng.standard_normal((4, 3))
        b = rng.standard_normal((3, 4))
        out, fl = gemmt(a, b)
        full = a @ b
        assert np.allclose(out, np.tril(full))
        assert np.allclose(np.triu(out, 1), 0)
        assert fl == gemmt_flops(4, 3)

    def test_half_of_gemm_flops(self):
        # gemmt is ~half a square gemm (Table 1's compute saving).
        assert gemmt_flops(100, 50) == pytest.approx(
            gemm_flops(100, 100, 50) / 2, rel=0.02)

    def test_nonsquare_output_rejected(self):
        with pytest.raises(KernelError):
            gemmt(np.zeros((3, 2)), np.zeros((2, 4)))


class TestTrsm:
    def test_left_lower(self, rng):
        tri = np.tril(rng.standard_normal((4, 4))) + 4 * np.eye(4)
        rhs = rng.standard_normal((4, 3))
        x, fl = trsm(tri, rhs, side="left", lower=True)
        assert np.allclose(tri @ x, rhs)
        assert fl == trsm_flops(4, 3)

    def test_right_upper(self, rng):
        tri = np.triu(rng.standard_normal((4, 4))) + 4 * np.eye(4)
        rhs = rng.standard_normal((5, 4))
        x, _ = trsm(tri, rhs, side="right", lower=False)
        assert np.allclose(x @ tri, rhs)

    def test_unit_diagonal(self, rng):
        tri = np.tril(rng.standard_normal((4, 4)), -1) + np.eye(4)
        rhs = rng.standard_normal((4, 2))
        x, _ = trsm(tri, rhs, side="left", lower=True, unit_diagonal=True)
        assert np.allclose(tri @ x, rhs)

    def test_singular_detected(self):
        tri = np.diag([1.0, 0.0, 2.0])
        with pytest.raises(SingularMatrixError):
            trsm(tri, np.ones((3, 1)))

    def test_bad_side(self):
        with pytest.raises(KernelError):
            trsm(np.eye(2), np.ones((2, 2)), side="top")

    def test_shape_checks(self):
        with pytest.raises(KernelError):
            trsm(np.eye(3), np.ones((4, 2)), side="left")
        with pytest.raises(KernelError):
            trsm(np.ones((2, 3)), np.ones((3, 2)))


class TestGetrf:
    def test_factorization(self, rng):
        a = rng.standard_normal((6, 6))
        lu, piv, fl = getrf(a)
        l = np.tril(lu, -1) + np.eye(6)
        u = np.triu(lu)
        perm = pivots_to_permutation(piv, 6)
        assert np.allclose(a[perm], l @ u)
        assert fl == getrf_flops(6, 6)

    def test_rectangular_panel(self, rng):
        a = rng.standard_normal((8, 3))
        lu, piv, _ = getrf(a)
        l = np.tril(lu[:, :3], -1) + np.vstack(
            [np.eye(3), np.zeros((5, 3))])
        l = np.tril(lu, -1)
        np.fill_diagonal(l, 1.0)
        u = np.triu(lu[:3])
        perm = pivots_to_permutation(piv, 8)
        assert np.allclose(a[perm], l @ u)

    def test_no_pivot_mode(self, rng):
        a = rng.standard_normal((5, 5)) + 5 * np.eye(5)
        lu, piv, _ = getrf(a, pivot=False)
        assert np.array_equal(piv, np.arange(5))
        l = np.tril(lu, -1) + np.eye(5)
        u = np.triu(lu)
        assert np.allclose(a, l @ u)

    def test_pivot_picks_largest(self):
        a = np.array([[1.0, 0.0], [10.0, 1.0]])
        _, piv, _ = getrf(a)
        assert piv[0] == 1

    def test_singular_raises(self):
        with pytest.raises(SingularMatrixError):
            getrf(np.zeros((3, 3)))

    def test_matches_scipy(self, rng):
        a = rng.standard_normal((7, 7))
        lu, piv, _ = getrf(a)
        lu_sp, piv_sp = scipy.linalg.lu_factor(a)
        assert np.allclose(lu, lu_sp)
        assert np.array_equal(piv, piv_sp)


class TestPotrf:
    def test_factorization(self, spd_matrix):
        l, fl = potrf(spd_matrix)
        assert np.allclose(l @ l.T, spd_matrix)
        assert np.allclose(np.triu(l, 1), 0)
        assert fl == potrf_flops(64)

    def test_not_spd_raises(self):
        with pytest.raises(KernelError):
            potrf(-np.eye(3))

    def test_nonsquare_rejected(self):
        with pytest.raises(KernelError):
            potrf(np.zeros((2, 3)))


class TestLaswp:
    def test_applies_swaps(self):
        a = np.arange(12.0).reshape(4, 3)
        piv = np.array([2, 1, 3, 3])
        out = laswp(a, piv)
        lu_like = a.copy()
        for i, p in enumerate(piv):
            lu_like[[i, p]] = lu_like[[p, i]]
        assert np.allclose(out, lu_like)

    def test_consistent_with_permutation(self, rng):
        a = rng.standard_normal((6, 4))
        piv = np.array([3, 1, 5, 4, 4, 5])
        assert np.allclose(laswp(a, piv),
                           a[pivots_to_permutation(piv, 6)])

    def test_out_of_range_pivot(self):
        with pytest.raises(KernelError):
            laswp(np.zeros((3, 2)), np.array([5]))


class TestFlopFormulas:
    def test_lu_leading_term(self):
        n = 1000
        assert lu_flops(n) == pytest.approx(2 * n ** 3 / 3, rel=0.01)

    def test_cholesky_leading_term(self):
        n = 1000
        assert cholesky_flops(n) == pytest.approx(n ** 3 / 3, rel=0.01)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gemm_flops(-1, 2, 3)
        with pytest.raises(ValueError):
            trsm_flops(2, -3)

    def test_getrf_symmetric_in_orientation(self):
        # LAPACK count depends only on {m, n} extents for m>=n vs n>=m.
        assert getrf_flops(10, 4) == getrf_flops(4, 10)
