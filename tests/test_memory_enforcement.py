"""Memory-enforced distributed execution: the paper's M-words budget as
a checked, tested invariant — for every schedule in the engine.

The lower bounds of conf_sc_KwasniewskiKBZS21 are parameterized by the
per-processor memory ``M``; this suite pins the runtime side of that
model parameter.  Every schedule declares a closed-form
``required_words`` (model memory plus transient working set) and the
suite asserts, for all five schedules:

* the distributed run completes under ``Machine(...,
  enforce_memory=True)`` at the declared budget, numerically intact;
* the observed per-rank ``peak_words`` stay at or below the budget on
  *every* rank — transients included, since the stores track the
  high-water mark on every ``put``;
* a budget shaved below the actual working set raises
  ``MemoryBudgetExceeded`` deterministically, at a stable
  (rank, step, key), so an overflow is attributable;
* peak-memory parity, mirroring the volume-parity suite
  (``test_engine_parity.py``): the declared bound must sit at or above
  the measured peak (the analytic side over-counts, never under-) and
  within ``REQUIRED_TIGHTNESS`` of it, and the measured peak must stay
  within ``MODEL_FACTOR`` of the model memory ``mem_words`` — the
  replication footprint the paper's bounds are stated in.

All runs are seeded and deterministic, so the reference runs (one
unbounded, one budget-enforced, one aborted per schedule) are computed
once and shared across the parametrized tests.
"""

import functools

import numpy as np
import pytest

from repro.engine import DistributedBackend, machine_for
from repro.engine.backends import MemoryReport
from repro.factorizations import (
    ConfchoxSchedule,
    ConfluxSchedule,
    Matmul25DSchedule,
)
from repro.factorizations.baselines.scalapack_chol import (
    ScalapackCholeskySchedule,
)
from repro.factorizations.baselines.scalapack_lu import ScalapackLUSchedule
from repro.machine import Machine, MemoryBudgetExceeded, MemoryLimitError

#: The declared bound may exceed the measured peak by at most this
#: factor (the analytic transients are upper bounds; a looser formula
#: would make budget enforcement vacuous).
REQUIRED_TIGHTNESS = 2.5

#: The measured peak may exceed the model memory ``mem_words`` (the
#: paper's ``M``: ``c N^2/P`` for 2.5D, ``3 c N^2/P`` for SUMMA,
#: ``N^2/P`` for the 2D baselines) by at most this factor: transients
#: and tile-granularity ceilings, bounded.  At these test scales the
#: ceilings bite hardest; the overhead shrinks toward 1 as N/P grows
#: (the examples' paper-scale sweep shows ~1.0-1.4).
MODEL_FACTOR = 2.5


def _seeded(seed=12345):
    return np.random.default_rng(seed)


def _dominant(n, rng):
    return rng.standard_normal((n, n)) + n * np.eye(n)


def _spd(n, rng):
    g = rng.standard_normal((n, n))
    return g @ g.T + n * np.eye(n)


# name -> (schedule factory, input factory): all five engine schedules.
CASES = {
    "conflux": (lambda: ConfluxSchedule(64, 8, v=8, c=2),
                lambda rng: _dominant(64, rng)),
    "confchox": (lambda: ConfchoxSchedule(64, 8, v=8, c=2),
                 lambda rng: _spd(64, rng)),
    "matmul25d": (lambda: Matmul25DSchedule(32, 8, s=8, c=2),
                  lambda rng: (rng.standard_normal((32, 32)),
                               rng.standard_normal((32, 32)))),
    "scalapack-lu": (
        lambda: ScalapackLUSchedule(64, 4, nb=8, panel_rebroadcast=False),
        lambda rng: rng.standard_normal((64, 64))),  # generic: pivoting on
    "scalapack-chol": (lambda: ScalapackCholeskySchedule(64, 4, nb=8),
                       lambda rng: _spd(64, rng)),
}

IDS = list(CASES)


def run_enforced(name: str, budget: float | None = None) -> tuple:
    """One distributed run on a budget-enforced machine; returns
    (result, memory report, schedule)."""
    make_sched, make_input = CASES[name]
    sched = make_sched()
    machine = (machine_for(sched) if budget is None
               else Machine(sched.nranks, mem_words=budget,
                            enforce_memory=True))
    backend = DistributedBackend(machine)
    result = backend.run(sched, a=make_input(_seeded()))
    return result, backend.memory_report(), sched


# The reference runs are deterministic (fixed seed, fixed config), so
# each is executed once per case and shared across tests.

@functools.lru_cache(maxsize=None)
def enforced_reference(name: str) -> tuple:
    """The budget-enforced run at the declared budget (cached)."""
    return run_enforced(name)


@functools.lru_cache(maxsize=None)
def observed_peak(name: str) -> float:
    """Max per-rank peak of an unbounded reference run (cached)."""
    make_sched, make_input = CASES[name]
    backend = DistributedBackend()
    backend.run(make_sched(), a=make_input(_seeded()))
    return backend.memory_report().max_peak_words


def failure_site(name: str) -> tuple:
    """Run one word below the observed peak; returns the violation's
    (rank, step, key, needed_words, exception)."""
    with pytest.raises(MemoryBudgetExceeded) as exc_info:
        run_enforced(name, budget=observed_peak(name) - 1)
    e = exc_info.value
    return (e.rank, e.step, e.key, e.needed_words, e)


@functools.lru_cache(maxsize=None)
def first_failure(name: str) -> tuple:
    return failure_site(name)


class TestBudgetedRunsSucceed:
    """(a) every schedule runs green at its declared budget."""

    @pytest.mark.parametrize("name", IDS)
    def test_completes_within_declared_budget(self, name):
        result, report, sched = enforced_reference(name)
        assert report.enforced
        assert report.within_budget
        assert result.comm.total_recv_words > 0

    @pytest.mark.parametrize("name", IDS)
    def test_numerics_survive_enforcement(self, name):
        """Budget checking must not alter the factors/product."""
        result, _, _ = enforced_reference(name)
        a = CASES[name][1](_seeded())
        if name == "matmul25d":
            assert np.allclose(result.lower, a[0] @ a[1])
        elif "chol" in name or name == "confchox":
            err = np.linalg.norm(a - result.lower @ result.lower.T)
            assert err / np.linalg.norm(a) < 1e-11
        else:
            err = np.linalg.norm(a[result.perm]
                                 - result.lower @ result.upper)
            assert err / np.linalg.norm(a) < 1e-11


class TestPeakWithinBudget:
    """(b) observed peak_words <= budget on every rank, transients
    included."""

    @pytest.mark.parametrize("name", IDS)
    def test_every_rank_peak_at_or_below_budget(self, name):
        _, report, _ = enforced_reference(name)
        over = np.where(report.peak_words > report.budget_words)[0]
        assert over.size == 0, f"ranks over budget: {over}"

    @pytest.mark.parametrize("name", IDS)
    def test_step_peaks_cover_every_step(self, name):
        """Per-step transient budgeting: one peak per superstep, each at
        or below the run-wide high-water mark."""
        _, report, sched = enforced_reference(name)
        assert len(report.step_peaks) == sched.steps()
        labels = [label for label, _ in report.step_peaks]
        assert labels == [sched.step_label(t) for t in range(sched.steps())]
        assert all(p <= report.max_peak_words for _, p in report.step_peaks)
        # The hottest step's transient peak is the run-wide peak unless
        # initial placement dominates (it never does here: every
        # schedule's working set grows past its at-rest layout).
        assert report.peak_step()[1] == report.max_peak_words


class TestUndersizedBudgetRaises:
    """(c) one word below the working set -> a deterministic, located
    MemoryBudgetExceeded."""

    @pytest.mark.parametrize("name", IDS)
    def test_raises_with_context(self, name):
        rank, step, key, needed, exc = first_failure(name)
        assert 0 <= rank < CASES[name][0]().nranks
        assert key is not None
        assert exc.capacity_words == observed_peak(name) - 1
        assert needed > exc.capacity_words
        # Structured context also renders readably.
        assert f"rank {rank}" in str(exc)
        # The budget violation is also the legacy memory error, so
        # pre-existing catch sites keep working.
        assert isinstance(exc, MemoryLimitError)

    @pytest.mark.parametrize("name", IDS)
    def test_failure_is_deterministic(self, name):
        """Same config, same seed -> the overflow happens at the same
        (rank, step, key) every time: a fresh run reproduces the cached
        reference failure exactly."""
        assert failure_site(name)[:4] == first_failure(name)[:4]

    @pytest.mark.parametrize("name", IDS)
    def test_report_available_after_abort(self, name):
        """The memory report of an aborted run shows how far it got."""
        peak = observed_peak(name)
        make_sched, make_input = CASES[name]
        sched = make_sched()
        machine = Machine(sched.nranks, mem_words=peak - 1,
                          enforce_memory=True)
        backend = DistributedBackend(machine)
        with pytest.raises(MemoryBudgetExceeded):
            backend.run(sched, a=make_input(_seeded()))
        report = backend.memory_report()
        assert report.enforced
        assert report.max_peak_words <= peak - 1


class TestPeakMemoryParity:
    """(d) trace-declared vs distributed-measured peak memory agree
    within documented tolerance, mirroring the volume-parity suite."""

    @pytest.mark.parametrize("name", IDS)
    def test_required_words_bounds_peak_tightly(self, name):
        peak = observed_peak(name)
        required = CASES[name][0]().required_words()
        assert peak <= required, "declared bound under-counts the peak"
        assert required <= REQUIRED_TIGHTNESS * peak, \
            f"declared bound too loose: {required} vs peak {peak}"

    @pytest.mark.parametrize("name", IDS)
    def test_peak_tracks_model_memory(self, name):
        """The measured peak sits at the paper's model memory M up to
        the documented transient/ceiling factor."""
        peak = observed_peak(name)
        model = CASES[name][0]().mem_words
        assert model <= peak <= MODEL_FACTOR * model


class TestMachineFor:
    def test_machine_is_budgeted_and_enforcing(self):
        sched = ConfluxSchedule(64, 8, v=8, c=2)
        machine = machine_for(sched)
        assert machine.enforces_memory
        assert machine.mem_words == sched.required_words()
        assert machine.nranks == sched.nranks

    def test_slack_scales_budget(self):
        sched = ConfluxSchedule(64, 8, v=8, c=2)
        machine = machine_for(sched, slack=2.0)
        assert machine.mem_words == 2.0 * sched.required_words()
        with pytest.raises(ValueError):
            machine_for(sched, slack=0.0)

    def test_backend_enforce_memory_flag(self):
        """DistributedBackend(enforce_memory=True) auto-sizes its fresh
        machine to the schedule's declared budget."""
        sched = ConfluxSchedule(64, 8, v=8, c=2)
        backend = DistributedBackend(enforce_memory=True)
        backend.run(sched, a=_dominant(64, _seeded()))
        report = backend.memory_report()
        assert report.enforced
        assert report.budget_words == sched.required_words()
        assert report.within_budget

    def test_explicit_machine_with_enforce_flag_rejected(self):
        """An explicit machine carries its own enforcement policy;
        combining it with enforce_memory=True would silently not
        enforce, so it is an error."""
        with pytest.raises(ValueError, match="not both"):
            DistributedBackend(Machine(8), enforce_memory=True)

    def test_unbounded_report_reads_unenforced(self):
        sched = ConfluxSchedule(32, 4, v=8, c=1)
        backend = DistributedBackend()
        backend.run(sched, a=_dominant(32, _seeded()))
        report = backend.memory_report()
        assert not report.enforced
        assert np.isnan(report.utilization)
        assert "unbounded" in report.summary()

    def test_report_before_any_run_rejected(self):
        with pytest.raises(RuntimeError):
            DistributedBackend().memory_report()


class TestMemoryReport:
    def test_summary_names_hottest_step(self):
        _, report, _ = enforced_reference("conflux")
        label, peak = report.peak_step()
        assert label in report.summary()
        assert isinstance(report, MemoryReport)
        assert 0 < report.utilization <= 1.0

    def test_resident_words_at_rest_below_peak(self):
        _, report, _ = enforced_reference("conflux")
        assert (report.resident_words <= report.peak_words).all()


class TestApiFeasibilityGate:
    """api.py rejects infeasible (N, P, c) configs up front on a
    budget-enforced machine — before any reshuffle word moves."""

    def _desc(self, n, grid_p):
        from repro.layouts import ScaLAPACKDescriptor
        return ScaLAPACKDescriptor(m=n, n=n, mb=8, nb=8,
                                   prows=grid_p[0], pcols=grid_p[1])

    def test_pdgetrf_rejects_undersized_machine(self):
        from repro import api

        small = Machine(4, mem_words=64, enforce_memory=True)
        desc = self._desc(64, (2, 2))
        with pytest.raises(MemoryBudgetExceeded) as exc_info:
            api.pdgetrf(small, "A", desc, v=8, c=1)
        assert exc_info.value.step == "<feasibility>"
        assert 0 <= exc_info.value.rank < 4
        assert small.stats.total_recv_words == 0       # nothing moved

    def test_resident_caller_tiles_count_against_budget(self):
        """The gate reserves per rank on top of what is already
        resident: a machine sized to required_words alone cannot also
        hold the caller's distributed matrix and the api's layout
        copies, and is rejected up front rather than aborting
        mid-run."""
        from repro import api
        from repro.layouts import BlockCyclicLayout
        from repro.machine import ProcessorGrid2D

        n, p = 64, 8
        required = ConfluxSchedule(n, p, v=8, c=1).required_words()
        machine = Machine(p, mem_words=required, enforce_memory=True)
        lay = BlockCyclicLayout(n, n, 8, 8, ProcessorGrid2D(2, 2))
        lay.scatter_from(machine, "A", _dominant(n, _seeded()))
        with pytest.raises(MemoryBudgetExceeded) as exc_info:
            api.pdgetrf(machine, "A", self._desc(n, (2, 2)), v=8, c=1)
        exc = exc_info.value
        assert exc.step == "<feasibility>"
        assert machine.stores[exc.rank].words > 0      # the loaded rank

    def test_pdgetrf_completes_on_enforcing_machine_with_headroom(self):
        """The api success path under enforcement: a budget the gate
        accepts really is enough — the factorization and both
        reshuffles complete within it."""
        from repro import api
        from repro.layouts import BlockCyclicLayout
        from repro.machine import ProcessorGrid2D

        n, p = 64, 4
        # What the gate reserves: the schedule's declaration plus its
        # three layout-copy lifetimes, on top of the caller's resident
        # matrix (N^2/P per rank here).
        required = ScalapackLUSchedule(n, p, nb=8).required_words()
        budget = required + 4 * (n * n / p)
        machine = Machine(p, mem_words=budget, enforce_memory=True)
        lay = BlockCyclicLayout(n, n, 8, 8, ProcessorGrid2D(2, 2))
        a = _dominant(n, _seeded())
        lay.scatter_from(machine, "A", a)
        res = api.pdgetrf(machine, "A", self._desc(n, (2, 2)), nb=8, c=1,
                          impl="scalapack")
        err = np.linalg.norm(a[res.perm] - res.lower @ res.upper)
        assert err / np.linalg.norm(a) < 1e-11
        assert (machine.peak_words_per_rank() <= budget).all()

    def test_pdgemm_rejects_undersized_machine(self):
        from repro import api

        small = Machine(4, mem_words=64, enforce_memory=True)
        desc = self._desc(32, (2, 2))
        with pytest.raises(MemoryBudgetExceeded):
            api.pdgemm(small, "A", desc, "B", desc, c=1)

    def test_pdpotrf_rejects_undersized_machine(self):
        from repro import api

        small = Machine(4, mem_words=64, enforce_memory=True)
        desc = self._desc(32, (2, 2))
        with pytest.raises(MemoryBudgetExceeded):
            api.pdpotrf(small, "A", desc, v=8, c=1)

    def test_unenforced_machine_not_gated(self):
        """The pre-flight check keys on enforcement, not on mem_words:
        declaring a small model M without enforcement stays runnable
        (the documented baseline-over-budget use case)."""
        from repro import api
        from repro.layouts import BlockCyclicLayout
        from repro.machine import ProcessorGrid2D

        n, p = 32, 4
        machine = Machine(p, mem_words=64, enforce_memory=False)
        desc = self._desc(n, (2, 2))
        lay = BlockCyclicLayout(n, n, 8, 8, ProcessorGrid2D(2, 2))
        a = _dominant(n, _seeded())
        lay.scatter_from(machine, "A", a)
        res = api.pdgetrf(machine, "A", desc, v=8, c=1)
        assert res.perm is not None
