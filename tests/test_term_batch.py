"""Batch-evaluation parity: ``TermBatch`` vs per-config ``run_closed``.

The batched closed-form evaluator must be *bit-identical* to tracing
every schedule on its own — same exact integer accumulation, only
vectorized across configs.  These tests randomize candidate grids over
all five engine schedules (hypothesis) and pin the planner's batched
scoring to the per-config reference loop on the paper's Table-2
points.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.harness import NODE_MEM_WORDS
from repro.engine.accounting import TermBatch
from repro.machine.exceptions import GridError
from repro.factorizations import (
    ConfchoxSchedule,
    ConfluxSchedule,
    Matmul25DSchedule,
)
from repro.factorizations.baselines.scalapack_chol import (
    ScalapackCholeskySchedule,
)
from repro.factorizations.baselines.scalapack_lu import ScalapackLUSchedule
from repro.planner import plan_cholesky, plan_gemm, plan_lu

TABLE2_POINTS = [(8192, 256), (16384, 1024), (32768, 4096)]


def _candidate_pool():
    """Every valid small configuration of the five schedules."""
    pool = []
    for n in (64, 96, 128):
        for p in (8, 12, 16):
            for c in (1, 2, 3, 4):
                for v in (n // 4, n // 8, n // 16):
                    for cls in (ConfluxSchedule, ConfchoxSchedule):
                        try:
                            pool.append(cls(n, p, v=v, c=c))
                        except (ValueError, GridError):
                            pass
                for s in (n // 4, n // 8):
                    try:
                        pool.append(Matmul25DSchedule(n, p, s=s, c=c))
                    except (ValueError, GridError):
                        pass
            for nb in (8, 16):
                for cls in (ScalapackLUSchedule, ScalapackCholeskySchedule):
                    try:
                        pool.append(cls(n, p, nb=nb))
                    except (ValueError, GridError):
                        pass
    try:
        pool.append(ScalapackLUSchedule(96, 12, nb=8,
                                        panel_rebroadcast=True))
    except (ValueError, GridError):
        pass
    return pool


POOL = _candidate_pool()


def _assert_stats_identical(batch_stats, ref_stats):
    for field in ("recv_words", "sent_words", "recv_msgs", "sent_msgs",
                  "flops"):
        got = getattr(batch_stats, field)
        want = getattr(ref_stats, field)
        assert np.array_equal(got, want), field


class TestBatchParity:
    @settings(max_examples=25, deadline=None)
    @given(idx=st.lists(st.integers(0, len(POOL) - 1), min_size=1,
                        max_size=6))
    def test_random_grids_bit_identical(self, idx):
        """Any mix of candidates reduces to the same bits as the
        per-config closed-form loop."""
        scheds = [POOL[i] for i in idx]
        batch = TermBatch()
        for sched in scheds:
            batch.add(sched)
        for sched, stats in zip(scheds, batch.evaluate()):
            _assert_stats_identical(stats, sched.trace_stats(steps="none"))

    def test_all_five_schedules_in_one_batch(self):
        scheds = [
            ConfluxSchedule(128, 16, v=16, c=4),
            ConfchoxSchedule(128, 16, v=16, c=4),
            Matmul25DSchedule(96, 16, s=24, c=4),
            ScalapackLUSchedule(96, 12, nb=8),
            ScalapackCholeskySchedule(96, 12, nb=8),
        ]
        batch = TermBatch()
        assert all(batch.add(s) == i for i, s in enumerate(scheds))
        assert len(batch) == len(scheds)
        for sched, stats in zip(scheds, batch.evaluate()):
            _assert_stats_identical(stats, sched.trace_stats(steps="none"))

    def test_batch_matches_chunked_reference(self):
        """Transitivity check straight to the original interpreter."""
        sched = ConfchoxSchedule(128, 16, v=16, c=4)
        batch = TermBatch()
        batch.add(sched)
        (stats,) = batch.evaluate()
        _assert_stats_identical(
            stats, sched.trace_stats(steps="none", evaluator="chunked"))


class TestPlannerDeterminism:
    @pytest.mark.parametrize("n,p", TABLE2_POINTS)
    def test_batched_scoring_picks_identical_plans(self, n, p):
        """``plan_*`` with batched TermBatch scoring returns the exact
        ranked configurations of the per-config reference loop."""
        for planner in (plan_lu, plan_cholesky, plan_gemm):
            fast = planner(n, p, NODE_MEM_WORDS, api_copies=3,
                           batched=True)
            ref = planner(n, p, NODE_MEM_WORDS, api_copies=3,
                          batched=False)
            assert fast.ranked == ref.ranked
            assert fast.chosen == ref.chosen
