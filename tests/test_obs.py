"""Tests for the unified telemetry layer (``repro.obs``).

Covers the span API (nesting, attributes, error capture, the shared
null span on the disabled path, the injectable clock, cross-process
re-parenting), the metrics registry (instrument kinds, snapshot,
reset), the Chrome-trace/metrics exporters, and the instrumentation
seams the rest of the system leans on: the registry-backed
``ServiceStats`` view, the cache's hit/miss/stale/corrupt accounting,
the executors' span shipping, and the spans + comm-stats + memory
interplay on a run aborted by ``MemoryBudgetExceeded``.
"""

import json
import logging
import os

import numpy as np
import pytest

from repro import obs
from repro.machine.stats import NullStepLog, StepLog, StepRecord
from repro.obs.export import (
    chrome_trace,
    metrics_json,
    span_events,
    step_timeline_events,
    write_chrome_trace,
)


@pytest.fixture
def tel():
    """A fresh telemetry installed as the process default (restored
    afterwards), so instrumented library code records here."""
    fresh = obs.Telemetry()
    previous = obs.set_default_telemetry(fresh)
    try:
        yield fresh
    finally:
        obs.set_default_telemetry(previous)


class TestSpans:
    def test_disabled_records_nothing_and_shares_null_span(self, tel):
        span = tel.span("x", cat="t", a=1)
        assert span is obs.NULL_SPAN
        with span as sp:
            sp.set(b=2)  # no-op, no error
        assert tel.spans() == ()

    def test_enabled_records_name_cat_args(self, tel):
        tel.enable()
        with tel.span("work", cat="test", n=4) as sp:
            sp.set(outcome="hit")
        (rec,) = tel.spans()
        assert rec.name == "work" and rec.cat == "test"
        assert rec.args == {"n": 4, "outcome": "hit"}
        assert rec.pid == os.getpid()
        assert rec.dur >= 0.0

    def test_nesting_records_inner_before_outer(self, tel):
        tel.enable()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        names = [r.name for r in tel.spans()]
        assert names == ["inner", "outer"]

    def test_exception_captured_and_propagated(self, tel):
        tel.enable()
        with pytest.raises(ValueError):
            with tel.span("boom"):
                raise ValueError("no")
        (rec,) = tel.spans()
        assert rec.args["error"] == "ValueError"

    def test_injectable_clock_is_deterministic(self, tel):
        ticks = iter(range(100))
        tel.enable(clock=lambda: float(next(ticks)))
        with tel.span("a"):
            pass
        with tel.span("b"):
            pass
        a, b = tel.spans()
        # enable() reads the clock once for the epoch (t=0); each span
        # then reads entry and exit ticks.
        assert (a.ts, a.dur) == (1.0, 1.0)
        assert (b.ts, b.dur) == (3.0, 1.0)

    def test_enable_clears_previous_buffer(self, tel):
        tel.enable()
        with tel.span("old"):
            pass
        tel.enable()
        assert tel.spans() == ()

    def test_disable_keeps_buffer_readable(self, tel):
        tel.enable()
        with tel.span("kept"):
            pass
        tel.disable()
        assert [r.name for r in tel.spans()] == ["kept"]

    def test_adopt_rebases_child_timestamps(self):
        # Parent epoch: wall 1000 at clock 50.  Child epoch: wall 1002
        # at clock 7.  A child span at its clock 9 happened at wall
        # 1004, i.e. parent clock 54.
        parent = obs.Telemetry()
        parent.epoch_wall, parent.epoch_clock = 1000.0, 50.0
        rec = obs.SpanRecord(name="w", cat="c", ts=9.0, dur=0.5,
                             pid=999, tid=1, args={})
        parent.adopt([rec], epoch_wall=1002.0, epoch_clock=7.0)
        (adopted,) = parent.spans()
        assert adopted.ts == pytest.approx(54.0)
        assert adopted.pid == 999  # worker identity preserved


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = obs.MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.0)
        reg.gauge("g").set(7.5)
        reg.histogram("h").observe(1.0)
        reg.histogram("h").observe(3.0)
        snap = reg.snapshot()
        assert snap["c"] == 3.0
        assert snap["g"] == 7.5
        assert snap["h.count"] == 2.0
        assert snap["h.sum"] == 4.0
        assert snap["h.mean"] == 2.0
        assert snap["h.min"] == 1.0 and snap["h.max"] == 3.0

    def test_empty_histogram_omits_min_max(self):
        reg = obs.MetricsRegistry()
        reg.histogram("h")
        snap = reg.snapshot()
        assert snap["h.count"] == 0.0 and snap["h.mean"] == 0.0
        assert "h.min" not in snap and "h.max" not in snap

    def test_kind_mismatch_raises(self):
        reg = obs.MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="Counter"):
            reg.gauge("x")

    def test_reset_zeroes_but_keeps_registrations(self):
        reg = obs.MetricsRegistry()
        reg.counter("c").inc(5)
        reg.histogram("h").observe(2.0)
        reg.reset()
        assert len(reg) == 2
        snap = reg.snapshot()
        assert snap["c"] == 0.0 and snap["h.count"] == 0.0


class TestExport:
    def test_span_events_are_complete_events_in_microseconds(self):
        rec = obs.SpanRecord(name="s", cat="c", ts=1.5, dur=0.25,
                             pid=1, tid=2, args={"k": "v"})
        (ev,) = span_events([rec])
        assert ev["ph"] == "X"
        assert ev["ts"] == pytest.approx(1.5e6)
        assert ev["dur"] == pytest.approx(0.25e6)
        assert ev["args"] == {"k": "v"}

    def test_step_timeline_from_step_log(self):
        log = StepLog()
        log.append(StepRecord(label="panel", recv_words_max=10.0,
                              recv_words_total=40.0))
        log.append(StepRecord(label="update", recv_words_max=20.0,
                              recv_words_total=80.0))
        events = step_timeline_events(log)
        labels = [e["name"] for e in events if e["ph"] == "I"]
        assert labels == ["step:panel", "step:update"]
        counters = [e for e in events if e["ph"] == "C"
                    and e["name"] == "recv_words_max"]
        assert [e["args"]["recv_words_max"] for e in counters] == \
            [10.0, 20.0]

    def test_null_step_log_yields_no_events(self):
        assert step_timeline_events(NullStepLog()) == []

    def test_write_chrome_trace_roundtrips_as_json(self, tel, tmp_path):
        tel.enable()
        with tel.span("a", cat="app"):
            pass
        path = write_chrome_trace(tmp_path / "t.json", tel)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert [e["name"] for e in doc["traceEvents"]] == ["a"]

    def test_metrics_json_merges_with_prefixes(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.counter("hits").inc()
        b.counter("hits").inc(5)
        merged = metrics_json(a, b, prefix=("", "svc"))
        assert merged == {"hits": 1.0, "svc.hits": 5.0}


class TestServiceStats:
    """The registry-backed compatibility view (and its hit_rate edge
    cases: zero lookups, post-reset)."""

    def test_hit_rate_zero_lookups(self):
        from repro.planner.service import ServiceStats

        stats = ServiceStats()
        assert stats.served == 0
        assert stats.hit_rate == 0.0  # no division by zero

    def test_hit_rate_after_reset(self):
        from repro.planner.service import ServiceStats

        stats = ServiceStats(lru_hits=8, lru_misses=2, live_plans=2)
        assert stats.hit_rate == pytest.approx(0.8)
        stats.reset()
        assert stats.served == 0 and stats.hit_rate == 0.0

    def test_augmented_assignment_lands_in_registry(self):
        reg = obs.MetricsRegistry()
        from repro.planner.service import ServiceStats

        stats = ServiceStats(registry=reg)
        stats.lru_hits += 3
        assert stats.lru_hits == 3
        assert reg.snapshot()["plan.service.lru_hits"] == 3.0

    def test_services_do_not_share_counters(self):
        from repro.planner.service import PlanService

        a, b = PlanService(), PlanService()
        a.stats.live_plans += 1
        assert a.stats.live_plans == 1 and b.stats.live_plans == 0

    def test_equality_and_unknown_field(self):
        from repro.planner.service import ServiceStats

        assert ServiceStats(lru_hits=1) == ServiceStats(lru_hits=1)
        assert ServiceStats(lru_hits=1) != ServiceStats(lru_hits=2)
        with pytest.raises(TypeError, match="unknown"):
            ServiceStats(bogus=1)


class TestNullStepLog:
    def test_totals_are_zero_for_every_field(self):
        log = NullStepLog()
        for field in ("flops_max", "flops_total", "recv_words_max",
                      "recv_words_total", "sent_words_max",
                      "sent_words_total", "msgs_max", "msgs_total"):
            assert log.total(field) == 0.0

    def test_append_iter_len_getitem(self):
        log = NullStepLog()
        log.append(StepRecord(label="dropped"))
        assert len(log) == 0
        assert list(log) == []
        with pytest.raises(IndexError):
            log[0]


class TestCacheAccounting:
    def _cache(self, tmp_path, fingerprint="f" * 64):
        from repro.runtime.cache import ResultCache

        return ResultCache(tmp_path, fingerprint=fingerprint)

    def test_cold_miss_then_hit(self, tel, tmp_path):
        cache = self._cache(tmp_path)
        assert cache.get("tok") is None
        cache.put("tok", 42)
        assert cache.get("tok") == 42
        assert (cache.hits, cache.misses) == (1, 1)
        assert (cache.stale, cache.corrupt) == (0, 0)

    def test_stale_miss_classified(self, tel, tmp_path):
        old = self._cache(tmp_path, fingerprint="a" * 64)
        old.put("tok", 1)
        new = self._cache(tmp_path, fingerprint="b" * 64)
        assert new.get("tok") is None
        assert new.misses == 1 and new.stale == 1
        assert tel.metrics.snapshot()["cache.stale"] == 1.0

    def test_corrupt_entry_counted_deleted_and_warned(self, tel,
                                                      tmp_path, caplog):
        cache = self._cache(tmp_path)
        cache.put("tok", 42)
        path = cache._path("tok")
        path.write_bytes(b"not a pickle")
        with caplog.at_level(logging.WARNING, logger="repro.runtime.cache"):
            assert cache.get("tok") is None
        assert cache.corrupt == 1 and cache.misses == 1
        assert not path.exists()  # poisoned entry removed
        assert any(str(path) in r.getMessage() for r in caplog.records)
        snap = tel.metrics.snapshot()
        assert snap["cache.corrupt"] == 1.0
        assert snap["cache.corrupt_deleted"] == 1.0
        # The slot is writable again after deletion.
        cache.put("tok", 7)
        assert cache.get("tok") == 7

    def test_get_spans_carry_outcome(self, tel, tmp_path):
        cache = self._cache(tmp_path)
        tel.enable()
        cache.get("tok")
        cache.put("tok", 1)
        cache.get("tok")
        gets = [r for r in tel.spans() if r.name == "cache.get"]
        assert [r.args["outcome"] for r in gets] == ["miss", "hit"]


class TestExecutorTelemetry:
    def _tasks(self):
        from repro.runtime.executor import SweepTask

        return [SweepTask("lu", "conflux", 2048, 64),
                SweepTask("cholesky", "confchox", 2048, 64)]

    def test_serial_run_sets_wall_metrics(self, tel):
        from repro.runtime.executor import SerialExecutor

        SerialExecutor().run(self._tasks())
        snap = tel.metrics.snapshot()
        assert snap["runtime.executor.tasks"] == 2.0
        assert snap["runtime.executor.last_run_s"] > 0.0
        assert snap["runtime.executor.run.wall_s.count"] == 1.0

    def test_serial_run_records_task_spans_when_enabled(self, tel):
        from repro.runtime.executor import SerialExecutor

        tel.enable()
        SerialExecutor().run(self._tasks())
        names = [r.name for r in tel.spans()]
        assert names.count("sweep.task") == 2
        assert names[-1] == "sweep.run"

    def test_pool_ships_worker_spans_home(self, tel):
        from repro.runtime.executor import ProcessPoolSweepExecutor

        tel.enable()
        ProcessPoolSweepExecutor(max_workers=2).run(self._tasks())
        task_spans = [r for r in tel.spans() if r.name == "sweep.task"]
        assert len(task_spans) == 2
        # Worker spans keep the worker's pid — one trace lane each.
        assert all(r.pid != os.getpid() for r in task_spans)
        assert tel.metrics.snapshot()[
            "runtime.executor.pool.queue_latency_s.count"] == 2.0

    def test_pool_disabled_path_matches_serial(self, tel):
        from repro.runtime.executor import (
            ProcessPoolSweepExecutor,
            SerialExecutor,
        )

        tasks = self._tasks()
        serial = SerialExecutor().run(tasks)
        pooled = ProcessPoolSweepExecutor(max_workers=2).run(tasks)
        assert tel.spans() == ()
        assert [r.mean_recv_words for r in pooled] == \
            [r.mean_recv_words for r in serial]


class TestAbortedRunTelemetry:
    """Spans + CommStats + memory report on a run that dies with
    MemoryBudgetExceeded mid-superstep."""

    def _run(self, budget=None):
        from repro.engine.backends import DistributedBackend
        from repro.factorizations import ConfluxSchedule
        from repro.machine import Machine

        n, p = 32, 4
        sched = ConfluxSchedule(n, p, v=8, c=1)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        machine = (Machine(p) if budget is None
                   else Machine(p, mem_words=budget, enforce_memory=True))
        backend = DistributedBackend(machine)
        backend.run(sched, a=a)
        return backend, machine

    def test_aborted_run_leaves_usable_telemetry(self, tel):
        from repro.machine import MemoryBudgetExceeded

        ok_backend, _ = self._run()
        peak = ok_backend.memory_report().max_peak_words

        tel.enable()
        with pytest.raises(MemoryBudgetExceeded):
            self._run(budget=peak - 1)
        tel.disable()
        # The failing superstep's span records the abort.
        engine = [r for r in tel.spans() if r.cat == "engine"]
        assert engine
        assert engine[-1].args.get("error") == "MemoryBudgetExceeded"

    def test_trace_exports_aborted_memory_report(self, tel, tmp_path):
        from repro.engine.backends import DistributedBackend
        from repro.factorizations import ConfluxSchedule
        from repro.machine import Machine, MemoryBudgetExceeded

        ok_backend, _ = self._run()
        peak = ok_backend.memory_report().max_peak_words

        n, p = 32, 4
        machine = Machine(p, mem_words=peak - 1, enforce_memory=True)
        backend = DistributedBackend(machine)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        tel.enable()
        with pytest.raises(MemoryBudgetExceeded):
            backend.run(ConfluxSchedule(n, p, v=8, c=1), a=a)
        tel.disable()
        report = backend.memory_report()  # covers however far it got
        path = write_chrome_trace(tmp_path / "aborted.json", tel,
                                  step_log=machine.stats.steps,
                                  memory_report=report)
        doc = json.loads(path.read_text())
        cats = {e["cat"] for e in doc["traceEvents"]}
        assert "engine" in cats and "memory" in cats
        mem = [e for e in doc["traceEvents"]
               if e["name"] == "memory.per_rank_peaks"]
        assert mem[0]["args"]["enforced"] is True
