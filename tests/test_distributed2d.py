"""Tests for the fully message-passing 2D LU — the ground-truth
execution that justifies the accounting-layer approach."""

import numpy as np
import pytest

from repro.factorizations.distributed2d import DistributedLU2D, distributed_lu_2d
from repro.factorizations.baselines import scalapack_lu
from repro.layouts import block_key


def dominant(rng, n):
    return rng.standard_normal((n, n)) + 2 * n * np.eye(n)


class TestCorrectness:
    @pytest.mark.parametrize("n,p,nb", [(32, 4, 8), (48, 4, 8), (64, 9, 16)])
    def test_factorization(self, rng, n, p, nb):
        a = dominant(rng, n)
        lower, upper, machine = distributed_lu_2d(a, p, nb)
        assert np.allclose(lower @ upper, a, atol=1e-8 * n)
        assert np.allclose(np.diag(lower), 1.0)

    def test_matches_unpivoted_reference(self, rng):
        from repro.kernels import blas

        n = 32
        a = dominant(rng, n)
        lower, upper, _ = distributed_lu_2d(a, 4, 8)
        ref, _, _ = blas.getrf(a, pivot=False)
        assert np.allclose(np.tril(lower, -1) + upper, ref, atol=1e-9)

    def test_non_dominant_rejected(self, rng):
        a = rng.standard_normal((32, 32))
        with pytest.raises(ValueError):
            distributed_lu_2d(a, 4, 8)

    def test_nb_divides_n(self):
        with pytest.raises(ValueError):
            DistributedLU2D(30, 4, 8)


class TestDataLocality:
    """No rank may hold data it neither owns nor legitimately received:
    the distributed contract the accounting layer abstracts away."""

    def test_final_stores_hold_only_owned_tiles(self, rng):
        n, p, nb = 32, 4, 8
        a = dominant(rng, n)
        algo = DistributedLU2D(n, p, nb)
        _, _, machine = algo.run(a)
        for rank in range(p):
            for key in list(machine.store(rank).keys()):
                _, bi, bj = key
                assert algo.layout.owner_rank(bi, bj) == rank, \
                    f"rank {rank} still holds foreign tile {key}"

    def test_communication_happened(self, rng):
        _, _, machine = distributed_lu_2d(dominant(rng, 32), 4, 8)
        assert machine.stats.total_recv_words > 0

    def test_single_rank_no_communication(self, rng):
        _, _, machine = distributed_lu_2d(dominant(rng, 32), 1, 8)
        assert machine.stats.total_recv_words == 0


class TestAccountingFidelity:
    """The validation behind the accounting-layer substitution: the real
    message-passing execution's counted volume is bounded above by the
    accounting schedule's and converges to it as the grid grows.

    At tiny grids the accounting overcounts by ~1/Pc + 1/Pr per panel:
    it charges every rank its full row/column share including the tiles
    the rank already owns (plus pivot search and row swaps, absent here
    by the no-pivoting contract).  At Pr = Pc = 2 that is a factor ~2;
    at the production grids of the figure sweeps (Pr, Pc >= 8) it is a
    sub-15% correction.
    """

    @pytest.mark.parametrize("n,p,nb,lo", [(64, 4, 8, 0.35),
                                           (128, 16, 16, 0.5),
                                           (256, 64, 16, 0.6)])
    def test_real_volume_bounded_by_accounting(self, rng, n, p, nb, lo):
        a = dominant(rng, n)
        _, _, machine = distributed_lu_2d(a, p, nb)
        real = machine.stats.mean_recv_words
        acct = scalapack_lu(n, p, nb=nb, execute=False,
                            panel_rebroadcast=False).mean_recv_words
        assert real <= acct
        assert real >= lo * acct  # converges from below as grids grow

    def test_flops_close(self, rng):
        n, p, nb = 64, 4, 8
        a = dominant(rng, n)
        _, _, machine = distributed_lu_2d(a, p, nb)
        acct = scalapack_lu(n, p, nb=nb, execute=False)
        # The accounting adds pivot-search flops and uses uniform row
        # shares; agreement within 15%.
        assert machine.stats.total_flops == pytest.approx(
            acct.total_flops, rel=0.15)

    def test_volume_scales_like_2d(self, rng):
        """Per-rank volume ~ N^2/sqrt(P) (with the small-grid ownership
        correction, the 4->16 rank ratio lands between sqrt(4)=2 and
        the correction-free 2.7)."""
        n, nb = 128, 16
        _, _, m4 = distributed_lu_2d(dominant(rng, n), 4, nb)
        _, _, m16 = distributed_lu_2d(dominant(rng, n), 16, nb)
        ratio = m4.stats.mean_recv_words / m16.stats.mean_recv_words
        assert 1.3 < ratio < 3.0
