"""Tests for the sequential red-blue pebble game and greedy scheduler."""

import pytest

from repro.lowerbounds import (
    derive_cholesky_bound,
    derive_lu_bound,
    derive_matmul_bound,
)
from repro.pebbles import (
    CDag,
    Move,
    PebbleGame,
    PebbleGameError,
    cholesky_cdag,
    greedy_schedule,
    lu_cdag,
    matmul_cdag,
    run_greedy,
)


def chain(k: int) -> CDag:
    g = CDag()
    for i in range(k):
        g.add_edge(i, i + 1)
    return g


class TestGameRules:
    def test_load_requires_blue(self):
        g = chain(2)
        game = PebbleGame(g, 4)
        with pytest.raises(PebbleGameError):
            game.apply(Move("load", 1))  # vertex 1 is not an input

    def test_compute_requires_red_preds(self):
        g = chain(2)
        game = PebbleGame(g, 4)
        with pytest.raises(PebbleGameError):
            game.apply(Move("compute", 1))

    def test_memory_limit_enforced(self):
        g = CDag()
        for i in range(5):
            g.add_edge(("in", i), "out")
        game = PebbleGame(g, 6)
        for i in range(5):
            game.apply(Move("load", ("in", i)))
        game.apply(Move("compute", "out"))
        assert game.max_red == 6
        game2 = PebbleGame(g, 6)
        for i in range(5):
            game2.apply(Move("load", ("in", i)))
        # A sixth unrelated red pebble then compute would exceed M.
        game2.apply(Move("store", ("in", 0)))

    def test_min_memory_check(self):
        g = CDag()
        for i in range(5):
            g.add_edge(("in", i), "out")
        with pytest.raises(ValueError):
            PebbleGame(g, 5)  # needs 5 preds + result = 6

    def test_store_requires_red(self):
        g = chain(1)
        game = PebbleGame(g, 3)
        with pytest.raises(PebbleGameError):
            game.apply(Move("store", 1))

    def test_evict_requires_red(self):
        g = chain(1)
        game = PebbleGame(g, 3)
        with pytest.raises(PebbleGameError):
            game.apply(Move("evict", 0))

    def test_io_counting(self):
        g = chain(1)
        game = PebbleGame(g, 3)
        game.apply(Move("load", 0))
        game.apply(Move("compute", 1))
        game.apply(Move("store", 1))
        assert game.io_cost == 2
        assert game.finished()

    def test_recomputation_flagged(self):
        g = chain(1)
        game = PebbleGame(g, 3)
        game.apply(Move("load", 0))
        game.apply(Move("compute", 1))
        with pytest.raises(PebbleGameError):
            game.apply(Move("compute", 1))

    def test_unknown_vertex(self):
        game = PebbleGame(chain(1), 3)
        with pytest.raises(PebbleGameError):
            game.apply(Move("load", 99))

    def test_unknown_op(self):
        game = PebbleGame(chain(1), 3)
        with pytest.raises(PebbleGameError):
            game.apply(Move("jump", 0))


class TestGreedyScheduler:
    @pytest.mark.parametrize("n,m", [(3, 6), (4, 8), (6, 12), (6, 30)])
    def test_lu_schedule_valid_and_finishes(self, n, m):
        game = run_greedy(lu_cdag(n), m)
        assert game.finished()
        assert game.computes == len(lu_cdag(n).compute_vertices())

    @pytest.mark.parametrize("n,m", [(3, 6), (5, 10), (6, 24)])
    def test_cholesky_schedule_valid(self, n, m):
        game = run_greedy(cholesky_cdag(n), m)
        assert game.finished()

    @pytest.mark.parametrize("n,m", [(2, 4), (3, 8), (4, 16)])
    def test_matmul_schedule_valid(self, n, m):
        game = run_greedy(matmul_cdag(n), m)
        assert game.finished()

    def test_never_exceeds_memory(self):
        g = lu_cdag(5)
        game = PebbleGame(g, 7)
        game.run(greedy_schedule(g, 7))
        assert game.max_red <= 7

    def test_more_memory_never_hurts(self):
        g = matmul_cdag(4)
        q_small = run_greedy(g, 8).io_cost
        q_large = run_greedy(g, 64).io_cost
        assert q_large <= q_small

    def test_io_at_least_inputs_plus_outputs(self):
        """Any complete pebbling loads every used input and stores every
        output at least once."""
        for n in (3, 4, 5):
            g = lu_cdag(n)
            game = run_greedy(g, 10)
            used_inputs = {v for v in g.inputs() if g.succs(v)}
            assert game.io_cost >= len(used_inputs) + len(g.outputs())


class TestGreedyRespectsLowerBounds:
    """Q_greedy (an upper bound on optimal) must respect the Section-3
    lower bounds: greedy >= derived bound."""

    @pytest.mark.parametrize("n,m", [(4, 8), (6, 10), (8, 16)])
    def test_matmul(self, n, m):
        q = run_greedy(matmul_cdag(n), m).io_cost
        bound = derive_matmul_bound(n, m).sequential_bound
        assert q >= bound

    @pytest.mark.parametrize("n,m", [(4, 8), (6, 12), (8, 16)])
    def test_lu(self, n, m):
        q = run_greedy(lu_cdag(n), m).io_cost
        bound = derive_lu_bound(n, m).sequential_bound
        assert q >= bound

    @pytest.mark.parametrize("n,m", [(4, 8), (6, 12), (8, 16)])
    def test_cholesky(self, n, m):
        """At toy scale the paper's rho=1 panel terms are approximate
        (they charge one load per panel vertex even when the value is
        still resident), so we compare against the unambiguous dominant
        term: the Schur statement's bound."""
        q = run_greedy(cholesky_cdag(n), m).io_cost
        bound = derive_cholesky_bound(n, m)
        assert q >= bound.per_statement["S3"].io_lower_bound

    def test_greedy_within_constant_of_bound(self):
        """The greedy schedule should not be wildly suboptimal on matmul
        (sanity check that the bound is meaningful, not vacuous)."""
        n, m = 8, 27
        q = run_greedy(matmul_cdag(n), m).io_cost
        bound = derive_matmul_bound(n, m).sequential_bound
        assert q <= 20 * bound
