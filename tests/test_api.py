"""Tests for the ScaLAPACK-compatible API (repro.api)."""

import numpy as np
import pytest

from repro.api import pdgemm, pdgetrf, pdgetrs, pdpotrf, pdpotrs
from repro.engine import TraceBackend, machine_for
from repro.factorizations import ConfluxSchedule
from repro.factorizations.baselines.scalapack_lu import ScalapackLUSchedule
from repro.layouts import BlockCyclicLayout, ScaLAPACKDescriptor
from repro.machine import Machine, ProcessorGrid2D


def setup_machine(rng, n=64, mb=16, spd=False):
    machine = Machine(4)
    desc = ScaLAPACKDescriptor(m=n, n=n, mb=mb, nb=mb, prows=2, pcols=2)
    layout = BlockCyclicLayout(n, n, mb, mb, ProcessorGrid2D(2, 2))
    if spd:
        g = rng.standard_normal((n, n))
        a = g @ g.T + n * np.eye(n)
    else:
        a = rng.standard_normal((n, n)) + n * np.eye(n)
    layout.scatter_from(machine, "A", a)
    return machine, desc, layout, a


class TestPdgetrf:
    def test_factorization_correct(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, v=8)
        err = np.linalg.norm(a[res.perm] - res.lower @ res.upper)
        assert err / np.linalg.norm(a) < 1e-12

    def test_factors_written_back_in_caller_layout(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, v=8)
        packed = res.gather()
        expected = np.tril(res.lower, -1) + res.upper
        assert np.allclose(packed, expected)

    def test_reshuffle_cost_is_low_order(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, v=8)
        # COSTA reshuffles move at most ~2 matrix copies in total.
        assert res.reshuffle_words <= 2 * desc.n * desc.n

    def test_same_tile_size_reshuffle_free(self, rng):
        machine, desc, _, a = setup_machine(rng, mb=8)
        res = pdgetrf(machine, "A", desc, v=8)
        assert res.reshuffle_words == 0

    def test_with_replication(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, v=8, c=2)
        err = np.linalg.norm(a[res.perm] - res.lower @ res.upper)
        assert err / np.linalg.norm(a) < 1e-12

    def test_non_square_rejected(self, rng):
        machine = Machine(4)
        desc = ScaLAPACKDescriptor(m=32, n=64, mb=16, nb=16,
                                   prows=2, pcols=2)
        with pytest.raises(ValueError):
            pdgetrf(machine, "A", desc)

    def test_solve_roundtrip(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, v=8)
        x = rng.standard_normal(desc.n)
        sol = pdgetrs(res, a @ x)
        assert np.allclose(sol.x, x, atol=1e-8)


class TestBaselineRouting:
    """impl="scalapack" runs the 2D baselines through the same
    DistributedBackend path as the 2.5D schedules, so their counted
    volumes are directly comparable."""

    def test_pdgetrf_scalapack_correct(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, nb=16, impl="scalapack")
        err = np.linalg.norm(a[res.perm] - res.lower @ res.upper)
        assert err / np.linalg.norm(a) < 1e-12

    def test_pdgetrf_scalapack_counted_matches_trace(self, rng):
        """The counted factorization volume sits at the analytic 2D
        trace at leading order — below it (the trace over-counts, see
        the parity suite; a 2x2 descriptor grid sees the broadcast-root
        idealization at full strength) but within a bounded factor."""
        n = 64
        machine = Machine(4)
        desc = ScaLAPACKDescriptor(m=n, n=n, mb=16, nb=16, prows=2, pcols=2)
        layout = BlockCyclicLayout(n, n, 16, 16, ProcessorGrid2D(2, 2))
        layout.scatter_from(machine, "A", rng.standard_normal((n, n)))
        res = pdgetrf(machine, "A", desc, nb=16, impl="scalapack")
        trace = TraceBackend().run(
            ScalapackLUSchedule(n, 4, nb=16, panel_rebroadcast=False))
        assert res.factorization_words <= trace.comm.total_recv_words
        assert res.factorization_words >= 0.5 * trace.comm.total_recv_words

    def test_pdpotrf_scalapack_correct(self, rng):
        machine, desc, _, a = setup_machine(rng, spd=True)
        res = pdpotrf(machine, "A", desc, nb=16, impl="scalapack")
        err = np.linalg.norm(a - res.lower @ res.lower.T)
        assert err / np.linalg.norm(a) < 1e-12

    def test_replication_rejected_for_2d(self, rng):
        machine, desc, _, _ = setup_machine(rng)
        with pytest.raises(ValueError):
            pdgetrf(machine, "A", desc, nb=16, c=2, impl="scalapack")
        with pytest.raises(ValueError):
            pdpotrf(machine, "A", desc, nb=16, c=2, impl="scalapack")

    def test_unknown_impl_rejected(self, rng):
        machine, desc, _, _ = setup_machine(rng)
        with pytest.raises(ValueError):
            pdgetrf(machine, "A", desc, impl="magma")


class TestDistributedSolves:
    """pdgetrs/pdpotrs on the ScaLAPACK distributed views: the solves
    are correct and asymptotically free against the counted
    factorization volume (the paper's O(N * nrhs) substitution)."""

    def test_pdgetrs_on_scalapack_view(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, nb=16, impl="scalapack")
        x = rng.standard_normal(desc.n)
        sol = pdgetrs(res, a @ x)
        assert np.allclose(sol.x, x, atol=1e-8)
        assert sol.comm.total_recv_words < res.factorization_words

    def test_pdpotrs_on_scalapack_view(self, rng):
        machine, desc, _, a = setup_machine(rng, spd=True)
        res = pdpotrf(machine, "A", desc, nb=16, impl="scalapack")
        x = rng.standard_normal(desc.n)
        sol = pdpotrs(res, a @ x)
        assert np.allclose(sol.x, x, atol=1e-7)
        assert sol.comm.total_recv_words < res.factorization_words

    def test_pdpotrs_volume_matches_analytic_substitution(self, rng):
        """Counted solve volume equals the 1D block substitution model:
        per block step every non-owner receives the solved block, twice
        (forward + backward sweep)."""
        machine, desc, _, a = setup_machine(rng, spd=True)
        res = pdpotrf(machine, "A", desc, nb=16, impl="scalapack")
        x = rng.standard_normal(desc.n)
        sol = pdpotrs(res, a @ x)
        nblocks = desc.n // 16
        expected = 2 * (nblocks - 1) * 16 * (machine.nranks - 1)
        assert sol.comm.total_recv_words == pytest.approx(expected)


class TestPdgemm:
    def test_product_correct(self, rng):
        machine, desc, layout, a = setup_machine(rng)
        b = rng.standard_normal((desc.n, desc.n))
        layout.scatter_from(machine, "B", b)
        res = pdgemm(machine, "A", desc, "B", desc)
        assert np.allclose(res.lower, a @ b)

    def test_product_written_back_in_caller_layout(self, rng):
        machine, desc, layout, a = setup_machine(rng)
        b = rng.standard_normal((desc.n, desc.n))
        layout.scatter_from(machine, "B", b)
        res = pdgemm(machine, "A", desc, "B", desc)
        assert np.allclose(res.gather(), a @ b)

    def test_with_replication(self, rng):
        machine, desc, layout, a = setup_machine(rng)
        b = rng.standard_normal((desc.n, desc.n))
        layout.scatter_from(machine, "B", b)
        res = pdgemm(machine, "A", desc, "B", desc, s=8, c=2)
        assert np.allclose(res.lower, a @ b)

    def test_counted_volume_matches_trace_at_leading_order(self, rng):
        from repro.factorizations import Matmul25DSchedule

        machine, desc, layout, a = setup_machine(rng)
        b = rng.standard_normal((desc.n, desc.n))
        layout.scatter_from(machine, "B", b)
        res = pdgemm(machine, "A", desc, "B", desc, s=8, c=2)
        trace = TraceBackend().run(
            Matmul25DSchedule(desc.n, 4, s=8, c=2))
        assert res.factorization_words <= trace.comm.total_recv_words
        assert res.factorization_words == pytest.approx(
            trace.comm.total_recv_words, rel=0.55)

    def test_size_mismatch_rejected(self, rng):
        machine = Machine(4)
        d1 = ScaLAPACKDescriptor(m=64, n=64, mb=16, nb=16, prows=2, pcols=2)
        d2 = ScaLAPACKDescriptor(m=32, n=32, mb=16, nb=16, prows=2, pcols=2)
        with pytest.raises(ValueError):
            pdgemm(machine, "A", d1, "B", d2)


class TestPdpotrf:
    def test_factorization_correct(self, rng):
        machine, desc, _, a = setup_machine(rng, spd=True)
        res = pdpotrf(machine, "S" if False else "A", desc, v=8)
        err = np.linalg.norm(a - res.lower @ res.lower.T)
        assert err / np.linalg.norm(a) < 1e-12

    def test_solve_roundtrip(self, rng):
        machine, desc, _, a = setup_machine(rng, spd=True)
        res = pdpotrf(machine, "A", desc, v=8)
        x = rng.standard_normal(desc.n)
        sol = pdpotrs(res, a @ x)
        assert np.allclose(sol.x, x, atol=1e-7)

    def test_perm_is_none(self, rng):
        machine, desc, _, a = setup_machine(rng, spd=True)
        res = pdpotrf(machine, "A", desc, v=8)
        assert res.perm is None


class TestPlanKwarg:
    """plan= runs a caller-supplied Plan/PlannedConfig without
    re-planning, and PDResult carries it (satellites 1 and 3)."""

    def test_pdgetrf_with_plan_object(self, rng):
        from repro.planner import plan_lu

        machine, desc, _, a = setup_machine(rng)
        plan = plan_lu(desc.n, 4)
        res = pdgetrf(machine, "A", desc, plan=plan)
        assert res.plan is plan
        chosen = plan.chosen
        assert res.params == {"impl": chosen.impl, **chosen.params}
        err = np.linalg.norm(a[res.perm] - res.lower @ res.upper)
        assert err / np.linalg.norm(a) < 1e-12

    def test_pdgetrf_with_bare_planned_config(self, rng):
        from repro.planner import plan_lu

        machine, desc, _, a = setup_machine(rng)
        config = plan_lu(desc.n, 4).chosen
        res = pdgetrf(machine, "A", desc, plan=config)
        assert res.plan is config
        assert res.params == {"impl": config.impl, **config.params}

    def test_plan_overrides_explicit_parameters(self, rng):
        from repro.planner import plan_lu

        machine, desc, _, a = setup_machine(rng)
        plan = plan_lu(desc.n, 4)
        res = pdgetrf(machine, "A", desc, v=32, c=1, plan=plan)
        assert res.params == {"impl": plan.chosen.impl,
                              **plan.chosen.params}

    def test_pdpotrf_with_plan(self, rng):
        from repro.planner import plan_cholesky

        machine, desc, _, a = setup_machine(rng, spd=True)
        plan = plan_cholesky(desc.n, 4)
        res = pdpotrf(machine, "A", desc, plan=plan)
        assert res.plan is plan
        err = np.linalg.norm(a - res.lower @ res.lower.T)
        assert err / np.linalg.norm(a) < 1e-12

    def test_pdgemm_with_plan(self, rng):
        from repro.planner import plan_gemm

        machine, desc, layout, a = setup_machine(rng)
        b = rng.standard_normal((desc.n, desc.n))
        layout.scatter_from(machine, "B", b)
        plan = plan_gemm(desc.n, 4)
        res = pdgemm(machine, "A", desc, "B", desc, plan=plan)
        assert res.plan is plan
        assert res.params == {"impl": "25d", **plan.chosen.params}
        assert np.allclose(res.lower, a @ b)

    def test_wrong_plan_type_rejected(self, rng):
        machine, desc, _, a = setup_machine(rng)
        with pytest.raises(TypeError, match="Plan or PlannedConfig"):
            pdgetrf(machine, "A", desc, plan={"impl": "conflux"})

    def test_explicit_call_has_no_plan(self, rng):
        machine, desc, _, a = setup_machine(rng)
        assert pdgetrf(machine, "A", desc, v=8).plan is None


class TestAutoUsesService:
    def test_machine_service_consulted_and_plan_attached(self, rng):
        from repro.planner import Plan, PlanService

        machine, desc, _, a = setup_machine(rng)
        machine.plan_service = PlanService()
        res = pdgetrf(machine, "A", desc, impl="auto")
        assert isinstance(res.plan, Plan)
        assert machine.plan_service.stats.served == 1
        assert res.params["impl"] == res.plan.chosen.impl

    def test_repeat_auto_hits_lru(self, rng):
        from repro.planner import PlanService

        machine, desc, _, a = setup_machine(rng)
        machine.plan_service = PlanService()
        pdgetrf(machine, "A", desc, impl="auto")
        pdgetrf(machine, "A", desc, impl="auto", out_name="A:lu2")
        assert machine.plan_service.stats.lru_hits == 1
        assert machine.plan_service.stats.live_plans == 1


class TestNbKwarg:
    """nb= is the 2D baselines' panel width; v-as-nb is a deprecated
    alias (satellite 2)."""

    def test_nb_runs_and_recorded(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, nb=8, impl="scalapack")
        assert res.params == {"impl": "scalapack", "nb": 8}
        assert res.v == 8

    def test_v_alias_warns_and_still_works(self, rng):
        machine, desc, _, a = setup_machine(rng)
        with pytest.warns(DeprecationWarning, match="use nb="):
            res = pdgetrf(machine, "A", desc, v=8, impl="scalapack")
        assert res.params == {"impl": "scalapack", "nb": 8}

    def test_conflicting_nb_and_v_rejected(self, rng):
        machine, desc, _, a = setup_machine(rng)
        with pytest.raises(ValueError, match="conflicting panel widths"):
            pdgetrf(machine, "A", desc, v=16, nb=8, impl="scalapack")

    def test_agreeing_nb_and_v_accepted_silently(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, v=8, nb=8, impl="scalapack")
        assert res.params == {"impl": "scalapack", "nb": 8}

    def test_pdpotrf_nb(self, rng):
        machine, desc, _, a = setup_machine(rng, spd=True)
        res = pdpotrf(machine, "A", desc, nb=8, impl="scalapack")
        assert res.params == {"impl": "scalapack", "nb": 8}
        err = np.linalg.norm(a - res.lower @ res.lower.T)
        assert err / np.linalg.norm(a) < 1e-12

    def test_pdpotrf_v_alias_warns(self, rng):
        machine, desc, _, a = setup_machine(rng, spd=True)
        with pytest.warns(DeprecationWarning, match="use nb="):
            pdpotrf(machine, "A", desc, v=8, impl="scalapack")


class TestNativeCopyLifecycle:
    """The transient native-layout copies every pd* call preps and
    writes back must be freed before the call returns — chained calls
    on an enforcing machine must not accumulate dead copies."""

    def _scatter(self, rng, machine, desc, n):
        layout = BlockCyclicLayout(n, n, desc.mb, desc.mb,
                                   ProcessorGrid2D(desc.prows, desc.pcols))
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        layout.scatter_from(machine, "A", a)
        return a

    def test_no_native_keys_survive_call(self, rng):
        machine, desc, _, _ = setup_machine(rng)
        pdgetrf(machine, "A", desc, v=16)
        leftovers = [key for rank in range(machine.nranks)
                     for key in machine.store(rank).keys()
                     if isinstance(key, tuple) and ":native" in key[0]]
        assert leftovers == []

    def test_chained_pdgetrf_fits_enforced_budget(self, rng):
        """Regression: the written-back native factors used to stay
        resident, so a second factorization on a machine sized for one
        blew the budget.  Steady state per rank is the operand, the
        previous packed factors and the pivot map (3 N^2/P on 4
        ranks); the budget below is exactly the second call's
        pre-flight reserve on top of that steady state — any leaked
        copy, input or output, overflows it."""
        n = 64
        schedule = ConfluxSchedule(n, 4, v=16, c=1)
        per_rank = n * n / 4
        required = schedule.required_words()
        machine = machine_for(schedule,
                              slack=(required + 6 * per_rank) / required)
        desc = ScaLAPACKDescriptor(m=n, n=n, mb=16, nb=16,
                                   prows=2, pcols=2)
        a = self._scatter(rng, machine, desc, n)
        first = pdgetrf(machine, "A", desc, v=16, out_name="F1")
        second = pdgetrf(machine, "A", desc, v=16, out_name="F2")
        for res in (first, second):
            err = np.linalg.norm(a[res.perm] - res.lower @ res.upper)
            assert err / np.linalg.norm(a) < 1e-12


class TestParamsRecorded:
    """PDResult.params records what the call actually ran with,
    uniformly across entry points."""

    def test_conflux(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, v=8, c=2)
        assert res.params == {"impl": "conflux", "v": 8, "c": 2}

    def test_confchox(self, rng):
        machine, desc, _, a = setup_machine(rng, spd=True)
        res = pdpotrf(machine, "A", desc, v=8)
        assert res.params == {"impl": "confchox", "v": 8, "c": 1}

    def test_25d(self, rng):
        machine, desc, layout, a = setup_machine(rng)
        layout.scatter_from(machine, "B",
                            rng.standard_normal((desc.n, desc.n)))
        res = pdgemm(machine, "A", desc, "B", desc, s=8, c=2)
        assert res.params == {"impl": "25d", "s": 8, "c": 2}
