"""Tests for the ScaLAPACK-compatible API (repro.api)."""

import numpy as np
import pytest

from repro.api import pdgetrf, pdgetrs, pdpotrf, pdpotrs
from repro.layouts import BlockCyclicLayout, ScaLAPACKDescriptor
from repro.machine import Machine, ProcessorGrid2D


def setup_machine(rng, n=64, mb=16, spd=False):
    machine = Machine(4)
    desc = ScaLAPACKDescriptor(m=n, n=n, mb=mb, nb=mb, prows=2, pcols=2)
    layout = BlockCyclicLayout(n, n, mb, mb, ProcessorGrid2D(2, 2))
    if spd:
        g = rng.standard_normal((n, n))
        a = g @ g.T + n * np.eye(n)
    else:
        a = rng.standard_normal((n, n)) + n * np.eye(n)
    layout.scatter_from(machine, "A", a)
    return machine, desc, layout, a


class TestPdgetrf:
    def test_factorization_correct(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, v=8)
        err = np.linalg.norm(a[res.perm] - res.lower @ res.upper)
        assert err / np.linalg.norm(a) < 1e-12

    def test_factors_written_back_in_caller_layout(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, v=8)
        packed = res.gather()
        expected = np.tril(res.lower, -1) + res.upper
        assert np.allclose(packed, expected)

    def test_reshuffle_cost_is_low_order(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, v=8)
        # COSTA reshuffles move at most ~2 matrix copies in total.
        assert res.reshuffle_words <= 2 * desc.n * desc.n

    def test_same_tile_size_reshuffle_free(self, rng):
        machine, desc, _, a = setup_machine(rng, mb=8)
        res = pdgetrf(machine, "A", desc, v=8)
        assert res.reshuffle_words == 0

    def test_with_replication(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, v=8, c=2)
        err = np.linalg.norm(a[res.perm] - res.lower @ res.upper)
        assert err / np.linalg.norm(a) < 1e-12

    def test_non_square_rejected(self, rng):
        machine = Machine(4)
        desc = ScaLAPACKDescriptor(m=32, n=64, mb=16, nb=16,
                                   prows=2, pcols=2)
        with pytest.raises(ValueError):
            pdgetrf(machine, "A", desc)

    def test_solve_roundtrip(self, rng):
        machine, desc, _, a = setup_machine(rng)
        res = pdgetrf(machine, "A", desc, v=8)
        x = rng.standard_normal(desc.n)
        sol = pdgetrs(res, a @ x)
        assert np.allclose(sol.x, x, atol=1e-8)


class TestPdpotrf:
    def test_factorization_correct(self, rng):
        machine, desc, _, a = setup_machine(rng, spd=True)
        res = pdpotrf(machine, "S" if False else "A", desc, v=8)
        err = np.linalg.norm(a - res.lower @ res.lower.T)
        assert err / np.linalg.norm(a) < 1e-12

    def test_solve_roundtrip(self, rng):
        machine, desc, _, a = setup_machine(rng, spd=True)
        res = pdpotrf(machine, "A", desc, v=8)
        x = rng.standard_normal(desc.n)
        sol = pdpotrs(res, a @ x)
        assert np.allclose(sol.x, x, atol=1e-7)

    def test_perm_is_none(self, rng):
        machine, desc, _, a = setup_machine(rng, spd=True)
        res = pdpotrf(machine, "A", desc, v=8)
        assert res.perm is None
