"""Unit tests for the alpha-beta-gamma performance model."""


import pytest

from repro.machine import PIZ_DAINT_XC40, MachineParams, PerfModel
from repro.machine.stats import CommStats, StepRecord


def make_log(records):
    stats = CommStats(1)
    for rec in records:
        stats.steps.append(rec)
    return stats.steps


class TestMachineParams:
    def test_piz_daint_peak(self):
        # One socket: 18 cores x 2.1 GHz x 16 flops = 604.8 GF/s.
        assert PIZ_DAINT_XC40.peak_flops == pytest.approx(604.8e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineParams(peak_flops=0, bandwidth_bytes=1, latency_s=0)
        with pytest.raises(ValueError):
            MachineParams(peak_flops=1, bandwidth_bytes=1, latency_s=0,
                          overlap=1.0)

    def test_blas_efficiency_monotone_saturating(self):
        p = PIZ_DAINT_XC40
        effs = [p.blas_efficiency(2.0 ** k) for k in range(10, 34, 4)]
        assert all(b >= a for a, b in zip(effs, effs[1:]))
        assert effs[-1] <= p.blas_eff_max
        assert p.blas_efficiency(2.0 ** 40) == pytest.approx(
            p.blas_eff_max, rel=1e-4)

    def test_blas_efficiency_small_workset(self):
        p = PIZ_DAINT_XC40
        assert p.blas_efficiency(0) < 0.01
        assert p.blas_efficiency(1024) < 0.01 * p.blas_eff_max


class TestPerfModel:
    def test_compute_bound_step(self):
        params = MachineParams(peak_flops=1e9, bandwidth_bytes=1e12,
                               latency_s=0.0, blas_eff_max=1.0,
                               blas_halfsat_words=1.0, overlap=0.0)
        model = PerfModel(params)
        log = make_log([StepRecord("s", flops_max=1e9, flops_total=1e9)])
        out = model.evaluate(log, nranks=1, local_words=1e12)
        assert out.total_s == pytest.approx(1.0, rel=1e-6)
        assert out.peak_fraction == pytest.approx(1.0, rel=1e-6)

    def test_bandwidth_bound_step(self):
        params = MachineParams(peak_flops=1e18, bandwidth_bytes=8e9,
                               latency_s=0.0, overlap=0.0)
        model = PerfModel(params)
        log = make_log([StepRecord("s", recv_words_max=1e9)])
        out = model.evaluate(log, nranks=1, local_words=1e9)
        assert out.total_s == pytest.approx(1.0, rel=1e-6)

    def test_latency_adds(self):
        params = MachineParams(peak_flops=1e18, bandwidth_bytes=1e18,
                               latency_s=1e-3, overlap=0.0)
        model = PerfModel(params)
        log = make_log([StepRecord("s", msgs_max=10.0)] * 5)
        out = model.evaluate(log, nranks=1, local_words=1e9)
        assert out.total_s == pytest.approx(0.05, rel=1e-6)

    def test_overlap_hides_bandwidth(self):
        base = dict(peak_flops=1e9, bandwidth_bytes=8e9, latency_s=0.0,
                    blas_eff_max=1.0, blas_halfsat_words=1.0)
        log = make_log([StepRecord("s", flops_max=1.0, flops_total=1.0,
                                   recv_words_max=1e9)])
        t_no = PerfModel(MachineParams(overlap=0.0, **base)).evaluate(
            log, 1, 1e12).total_s
        t_half = PerfModel(MachineParams(overlap=0.5, **base)).evaluate(
            log, 1, 1e12).total_s
        assert t_half == pytest.approx(t_no / 2, rel=1e-6)

    def test_peak_fraction_in_unit_interval(self):
        model = PerfModel()
        log = make_log([StepRecord("s", flops_max=1e12, flops_total=1e12,
                                   recv_words_max=1e6, msgs_max=10)])
        out = model.evaluate(log, nranks=4, local_words=2.0 ** 27)
        assert 0 < out.peak_fraction < 1

    def test_empty_log_rejected(self):
        """A result traced with steps='none' (the closed-form sweep
        default) has no per-step maxima; silently timing it would
        return nonsense, so the model refuses."""
        model = PerfModel()
        with pytest.raises(ValueError, match="empty step log"):
            model.evaluate(make_log([]), nranks=1, local_words=1.0)

    def test_columnar_log_matches_records(self):
        from repro.factorizations import ConfluxSchedule

        model = PerfModel()
        col = ConfluxSchedule(96, 12, v=12, c=3).trace_stats(
            steps="columnar")
        rec = ConfluxSchedule(96, 12, v=12, c=3).trace_stats(
            steps="records")
        a = model.evaluate(col.steps, 12, 96 * 96 / 12)
        b = model.evaluate(rec.steps, 12, 96 * 96 / 12)
        assert a == b

    def test_nranks_validation(self):
        model = PerfModel()
        with pytest.raises(ValueError):
            model.evaluate(make_log([]), nranks=0, local_words=1.0)

    def test_closed_form_consistent_with_step(self):
        model = PerfModel()
        t = model.time_closed_form(1e12, 1e6, 100.0, 2.0 ** 27)
        log = make_log([StepRecord("s", flops_max=1e12, flops_total=1e12,
                                   recv_words_max=1e6, msgs_max=100.0)])
        out = model.evaluate(log, nranks=1, local_words=2.0 ** 27)
        assert t == pytest.approx(out.total_s, rel=1e-9)

    def test_small_local_domain_hurts_efficiency(self):
        """The paper's latency-bound regime: N^2/P < 2^27 degrades peak."""
        model = PerfModel()
        rec = StepRecord("s", flops_max=1e10, flops_total=1e10)
        t_big = model.evaluate(make_log([rec]), 1, 2.0 ** 30).total_s
        t_small = model.evaluate(make_log([rec]), 1, 2.0 ** 20).total_s
        assert t_small > 5 * t_big
