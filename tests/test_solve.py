"""Tests for the distributed solves (repro.factorizations.solve)."""

import numpy as np
import pytest

from repro.factorizations import (
    cholesky_solve,
    confchox_cholesky,
    conflux_lu,
    lu_solve,
)
from repro.factorizations.baselines import scalapack_lu


def make_system(rng, n):
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    x = rng.standard_normal(n)
    return a, x, a @ x


class TestLUSolve:
    def test_single_rhs(self, rng):
        a, x, b = make_system(rng, 64)
        res = conflux_lu(64, 8, v=8, c=2, a=a)
        sol = lu_solve(res, b)
        assert np.allclose(sol.x, x, atol=1e-8)

    def test_multiple_rhs(self, rng):
        n, k = 64, 5
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        x = rng.standard_normal((n, k))
        res = conflux_lu(n, 8, v=8, c=2, a=a)
        sol = lu_solve(res, a @ x)
        assert sol.x.shape == (n, k)
        assert np.allclose(sol.x, x, atol=1e-8)

    def test_works_on_2d_baseline_result(self, rng):
        a, x, b = make_system(rng, 64)
        res = scalapack_lu(64, 4, nb=16, a=a)
        sol = lu_solve(res, b)
        assert np.allclose(sol.x, x, atol=1e-8)

    def test_trace_result_rejected(self):
        res = conflux_lu(64, 8, v=8, c=2, execute=False)
        with pytest.raises(ValueError):
            lu_solve(res, np.zeros(64))

    def test_rhs_size_checked(self, rng):
        a, _, _ = make_system(rng, 32)
        res = conflux_lu(32, 4, v=8, c=2, a=a)
        with pytest.raises(ValueError):
            lu_solve(res, np.zeros(16))

    def test_solve_communication_is_lower_order(self, rng):
        """The solve moves O(N * nrhs) words — negligible against the
        factorization's N^3/(P sqrt(M))."""
        n, p = 128, 8
        a, _, b = make_system(rng, n)
        res = conflux_lu(n, p, v=16, c=2, a=a)
        sol = lu_solve(res, b)
        assert sol.max_recv_words < res.max_recv_words
        assert sol.max_recv_words <= 4 * n  # ~2 substitutions x N words

    def test_solve_flops_attributed(self, rng):
        a, _, b = make_system(rng, 64)
        res = conflux_lu(64, 8, v=8, c=2, a=a)
        sol = lu_solve(res, b)
        # Two triangular solves: ~2 * N^2 flops total.
        assert sol.comm.total_flops == pytest.approx(2 * 64 * 64, rel=0.5)


class TestCholeskySolve:
    def test_single_rhs(self, rng):
        n = 64
        g = rng.standard_normal((n, n))
        a = g @ g.T + n * np.eye(n)
        x = rng.standard_normal(n)
        res = confchox_cholesky(n, 8, v=8, c=2, a=a)
        sol = cholesky_solve(res, a @ x)
        assert np.allclose(sol.x, x, atol=1e-7)

    def test_lu_result_rejected(self, rng):
        a, _, b = make_system(rng, 32)
        res = conflux_lu(32, 4, v=8, c=2, a=a)
        with pytest.raises(ValueError):
            cholesky_solve(res, b)

    def test_multiple_rhs(self, rng):
        n, k = 48, 3
        g = rng.standard_normal((n, n))
        a = g @ g.T + n * np.eye(n)
        x = rng.standard_normal((n, k))
        res = confchox_cholesky(n, 4, v=8, c=2, a=a)
        sol = cholesky_solve(res, a @ x)
        assert np.allclose(sol.x, x, atol=1e-7)
