"""Tests for COnfLUX (Section 7 / Algorithm 1)."""


import numpy as np
import pytest

from repro.factorizations import ConfluxLU, conflux_lu, default_block_size
from repro.lowerbounds import lu_io_lower_bound
from repro.models import costmodels as cm


def lu_residual(a, res):
    pa = a[res.perm]
    return np.linalg.norm(pa - res.lower @ res.upper) / np.linalg.norm(a)


class TestNumericalCorrectness:
    @pytest.mark.parametrize("n,p,v,c", [
        (32, 4, 8, 1),      # 2D degenerate
        (64, 8, 8, 2),      # 2.5D
        (64, 16, 16, 4),    # deeper replication
        (96, 12, 12, 3),    # non-power-of-two
    ])
    def test_factorization_residual(self, rng, n, p, v, c):
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        res = conflux_lu(n, p, v=v, c=c, a=a)
        assert lu_residual(a, res) < 1e-12

    def test_random_nonsymmetric_with_pivoting(self, rng):
        """General (not diagonally dominant) matrices need the pivoting
        to stay stable."""
        n = 64
        a = rng.standard_normal((n, n))
        res = conflux_lu(n, 8, v=8, c=2, a=a)
        assert lu_residual(a, res) < 1e-10

    def test_perm_is_permutation(self, rng):
        res = conflux_lu(32, 4, v=8, c=2, rng=rng)
        assert sorted(res.perm.tolist()) == list(range(32))

    def test_lower_is_unit_triangular(self, rng):
        res = conflux_lu(32, 4, v=8, c=2, rng=rng)
        assert np.allclose(np.diag(res.lower), 1.0)
        assert np.allclose(np.triu(res.lower, 1), 0.0)

    def test_upper_is_triangular(self, rng):
        res = conflux_lu(32, 4, v=8, c=2, rng=rng)
        assert np.allclose(np.tril(res.upper, -1), 0.0)

    def test_matches_scipy_solution(self, rng):
        """The factorization must solve linear systems correctly."""
        import scipy.linalg

        n = 48
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        b = rng.standard_normal(n)
        res = conflux_lu(n, 4, v=8, c=2, a=a)
        y = scipy.linalg.solve_triangular(res.lower, b[res.perm], lower=True,
                                          unit_diagonal=True)
        x = scipy.linalg.solve_triangular(res.upper, y)
        assert np.allclose(a @ x, b, atol=1e-8)

    def test_single_rank_no_communication(self, rng):
        a = rng.standard_normal((16, 16)) + 16 * np.eye(16)
        res = conflux_lu(16, 1, v=4, c=1, a=a)
        assert lu_residual(a, res) < 1e-12
        assert res.comm.total_recv_words == 0

    def test_reconstruct(self, rng):
        a = rng.standard_normal((32, 32)) + 32 * np.eye(32)
        res = conflux_lu(32, 4, v=8, c=2, a=a)
        assert np.allclose(res.reconstruct(), a[res.perm])


class TestParameterValidation:
    def test_v_must_divide_n(self):
        with pytest.raises(ValueError):
            ConfluxLU(60, 4, v=8, c=2)

    def test_c_must_divide_v(self):
        with pytest.raises(ValueError):
            ConfluxLU(64, 32, v=8, c=16)

    def test_trace_mode_rejects_matrix(self, rng):
        algo = ConfluxLU(64, 8, v=8, c=2, execute=False)
        with pytest.raises(ValueError):
            algo.run(a=np.eye(64))

    def test_wrong_matrix_shape(self):
        algo = ConfluxLU(64, 8, v=8, c=2)
        with pytest.raises(ValueError):
            algo.run(a=np.eye(32))

    def test_default_block_size_properties(self):
        for n, p, c in [(1024, 64, 4), (4096, 512, 8), (512, 8, 2)]:
            v = default_block_size(n, p, c)
            assert n % v == 0
            assert v % c == 0
            assert v >= c

    def test_default_c_divides_p(self):
        algo = ConfluxLU(243, 27)
        assert 27 % algo.c == 0
        assert algo.c == 3


class TestCommunicationCost:
    def test_trace_matches_execution_accounting(self, rng):
        """Trace mode and execution mode run the same accounting."""
        kw = dict(n=64, nranks=8, v=8, c=2)
        t = ConfluxLU(execute=False, **kw).run()
        e = ConfluxLU(execute=True, **kw).run(rng=rng)
        assert t.max_recv_words == e.max_recv_words
        assert np.allclose(t.comm.recv_words, e.comm.recv_words)

    def test_volume_matches_full_model(self):
        for (n, p, c, v) in [(8192, 256, 4, 32), (16384, 1024, 8, 32)]:
            res = conflux_lu(n, p, v=v, c=c, execute=False)
            model = cm.conflux_full_model(n, p, c, v)
            assert res.mean_recv_words == pytest.approx(model, rel=0.03)

    def test_leading_term_near_paper_model(self):
        """For M small relative to N^2 (c modest), the traced volume
        approaches N^3/(P sqrt(M)) — Lemma 10's leading term."""
        n, p, c = 65536, 1024, 2
        v = 32
        res = conflux_lu(n, p, v=v, c=c, execute=False)
        m = c * n * n / p
        lead = cm.conflux_paper_model(n, p, m)
        assert res.mean_recv_words == pytest.approx(lead, rel=0.2)

    def test_volume_respects_lower_bound(self):
        """Counted max-rank volume >= the parallel I/O lower bound."""
        for (n, p, c, v) in [(8192, 256, 4, 32), (16384, 1024, 8, 32)]:
            res = conflux_lu(n, p, v=v, c=c, execute=False)
            m = c * n * n / p
            assert res.max_recv_words >= lu_io_lower_bound(n, p, m)

    def test_near_optimality_factor(self):
        """COnfLUX is within ~1.5x of the bound plus lower-order terms;
        in a regime where O(M) is small the measured factor must be
        below 2."""
        n, p, c, v = 65536, 1024, 4, 32
        res = conflux_lu(n, p, v=v, c=c, execute=False)
        m = c * n * n / p
        ratio = res.max_recv_words / lu_io_lower_bound(n, p, m)
        assert 1.0 <= ratio < 2.0

    def test_replication_reduces_volume(self):
        """More replication (larger c, hence larger M) must reduce the
        leading-order communication."""
        n, p = 32768, 512
        v_small = conflux_lu(n, p, v=32, c=2, execute=False).mean_recv_words
        v_large = conflux_lu(n, p, v=32, c=8, execute=False).mean_recv_words
        assert v_large < v_small

    def test_flops_match_lu_total(self):
        """Total attributed flops ~ 2N^3/3 regardless of grid."""
        for (n, p, c, v) in [(4096, 64, 4, 16), (8192, 256, 4, 32)]:
            res = conflux_lu(n, p, v=v, c=c, execute=False)
            assert res.total_flops == pytest.approx(2 * n ** 3 / 3, rel=0.05)

    def test_step_log_length(self):
        res = conflux_lu(1024, 16, v=32, c=2, execute=False)
        assert len(res.step_log) == 1024 // 32

    def test_load_balance(self):
        """Max per-rank volume within a modest factor of the mean."""
        res = conflux_lu(16384, 256, v=32, c=4, execute=False)
        assert res.max_recv_words <= 1.5 * res.mean_recv_words
