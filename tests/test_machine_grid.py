"""Unit tests for processor grids (repro.machine.grid)."""

import numpy as np
import pytest

from repro.machine import (
    GridError,
    ProcessorGrid2D,
    ProcessorGrid3D,
    balanced_block_count,
    choose_grid_25d,
    choose_grid_2d,
    largest_square_divisor,
    replication_factor,
)


class TestSquareDivisor:
    @pytest.mark.parametrize("p,expected", [
        (1, (1, 1)), (4, (2, 2)), (8, (2, 4)), (12, (3, 4)),
        (16, (4, 4)), (36, (6, 6)), (7, (1, 7)), (128, (8, 16)),
    ])
    def test_values(self, p, expected):
        assert largest_square_divisor(p) == expected

    def test_product_preserved(self):
        for p in range(1, 200):
            a, b = largest_square_divisor(p)
            assert a * b == p
            assert a <= b

    def test_rejects_nonpositive(self):
        with pytest.raises(GridError):
            largest_square_divisor(0)


class TestGrid2D:
    def test_rank_coords_roundtrip(self):
        g = ProcessorGrid2D(3, 4)
        for pi in range(3):
            for pj in range(4):
                assert g.coords(g.rank(pi, pj)) == (pi, pj)

    def test_size(self):
        assert ProcessorGrid2D(3, 4).size == 12

    def test_row_and_col_ranks(self):
        g = ProcessorGrid2D(2, 3)
        assert g.row_ranks(1) == [3, 4, 5]
        assert g.col_ranks(2) == [2, 5]

    def test_out_of_range(self):
        g = ProcessorGrid2D(2, 2)
        with pytest.raises(GridError):
            g.rank(2, 0)
        with pytest.raises(GridError):
            g.coords(4)

    def test_iteration_covers_grid(self):
        g = ProcessorGrid2D(2, 3)
        assert len(list(g)) == 6


class TestGrid3D:
    def test_rank_coords_roundtrip(self):
        g = ProcessorGrid3D(2, 3, 4)
        seen = set()
        for pi, pj, pk in g:
            r = g.rank(pi, pj, pk)
            assert g.coords(r) == (pi, pj, pk)
            seen.add(r)
        assert seen == set(range(24))

    def test_layer_ordering_is_slowest(self):
        g = ProcessorGrid3D(2, 2, 2)
        # Layer 0 occupies ranks 0..3, layer 1 ranks 4..7.
        assert g.layer_ranks(0) == [0, 1, 2, 3]
        assert g.layer_ranks(1) == [4, 5, 6, 7]

    def test_fiber_ranks(self):
        g = ProcessorGrid3D(2, 2, 3)
        fiber = g.fiber_ranks(1, 0)
        assert len(fiber) == 3
        assert all(g.coords(r)[:2] == (1, 0) for r in fiber)

    def test_layer_grid(self):
        g = ProcessorGrid3D(2, 3, 4)
        lg = g.layer_grid()
        assert (lg.rows, lg.cols) == (2, 3)


class TestReplicationFactor:
    def test_memory_limited(self):
        # P*M/N^2 = 2 -> c = 2.
        assert replication_factor(16, 4, 2.0) == 2

    def test_cube_root_cap(self):
        # Plenty of memory: capped at P^(1/3) (rounded, divisor-adjusted).
        assert replication_factor(64, 4, 1e9) == 4

    def test_divisor_adjustment(self):
        # P=10, cube root ~2.15 -> 2 divides 10.
        assert replication_factor(10, 4, 1e9) == 2

    def test_at_least_one(self):
        assert replication_factor(4, 100, 2500.0) == 1

    def test_invalid(self):
        with pytest.raises(GridError):
            replication_factor(0, 4, 10)


class TestChooseGrids:
    def test_choose_2d_square(self):
        g = choose_grid_2d(16)
        assert (g.rows, g.cols) == (4, 4)

    def test_choose_25d_consistent(self):
        g = choose_grid_25d(64, 1024, 1024 * 1024.0, c=4)
        assert g.layers == 4
        assert g.size == 64

    def test_choose_25d_bad_c(self):
        with pytest.raises(GridError):
            choose_grid_25d(64, 1024, 1024.0, c=5)


class TestBalancedBlockCount:
    def test_full_range(self):
        # 10 blocks cyclic over 3 procs: 4, 3, 3.
        counts = [balanced_block_count(10, 3, p) for p in range(3)]
        assert counts == [4, 3, 3]

    def test_with_offset(self):
        # Blocks 4..9 cyclic over 3: owners 1,2,0,1,2,0.
        counts = [balanced_block_count(10, 3, p, first=4) for p in range(3)]
        assert counts == [2, 2, 2]
        assert sum(counts) == 6

    def test_vectorized_matches_scalar(self):
        procs = np.arange(5)
        vec = balanced_block_count(17, 5, procs, first=3)
        scalar = [balanced_block_count(17, 5, p, first=3) for p in range(5)]
        assert list(vec) == scalar

    def test_total_equals_range(self):
        for nb in (1, 7, 16):
            for first in (0, 3, 15):
                for p in (1, 2, 5):
                    total = sum(balanced_block_count(nb, p, q, first)
                                for q in range(p))
                    assert total == max(0, nb - first)

    def test_empty_range(self):
        assert balanced_block_count(5, 2, 0, first=5) == 0

    def test_negative_rejected(self):
        with pytest.raises(GridError):
            balanced_block_count(-1, 2, 0)
