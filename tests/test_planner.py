"""Tests for the planner subsystem (repro.planner).

Pins the contract the new subsystem introduces: deterministic ranked
plans, agreement with the historical ``best_conflux_config`` search on
the Table-2 points, feasibility identical to :mod:`repro.api`'s
pre-flight memory gate, and ``impl="auto"`` picking a configuration
whose *counted* communication beats every explicitly named
implementation at the same (N, P, M).
"""

import math

import numpy as np
import pytest

from repro.api import pdgemm, pdgetrf, pdpotrf
from repro.layouts import BlockCyclicLayout, ScaLAPACKDescriptor
from repro.machine import Machine, MemoryBudgetExceeded, ProcessorGrid2D
from repro.planner import (
    NoFeasiblePlanError,
    config_25d,
    panel_candidates,
    panel_width_2d,
    plan_cholesky,
    plan_gemm,
    plan_lu,
    replication_candidates,
    strip_candidates,
    tile_candidates,
)

TABLE2_POINTS = [(8192, 256), (16384, 1024), (32768, 4096)]

#: One Piz Daint rank's memory, as in the harness.
NODE_M = 32 * 2 ** 30 / 8


class TestCandidates:
    def test_replication_divisors_only(self):
        for c in replication_candidates(1024, 16384):
            assert 1024 % c == 0
            assert c <= round(1024 ** (1 / 3))

    def test_replication_memory_pruned(self):
        n, p = 65536, 64
        tight = 2.0 * n * n / p      # fits c=1 and c=2 only
        assert replication_candidates(p, n, tight) == [1, 2]

    def test_tile_candidates_divide_n(self):
        for v in tile_candidates(16384, 8):
            assert 16384 % v == 0 and v % 8 == 0

    def test_panel_candidates_exclude_single_step(self):
        """nb == N (whole matrix on the diagonal owner) is degenerate."""
        assert all(nb < 64 for nb in panel_candidates(64))

    def test_strip_candidates_whole_slices(self):
        for s in strip_candidates(16384, 8):
            assert 16384 % (s * 8) == 0

    def test_config_25d_degrades_incompatible_c(self):
        """N = 2^a * k with an odd c: fall back to a compatible depth."""
        c, v = config_25d(9728, 27, 3)   # 9728 = 2^9 * 19, c=3 impossible
        assert 27 % c == 0
        assert 9728 % v == 0 and v % c == 0

    def test_config_25d_keeps_compatible_c(self):
        c, _ = config_25d(16384, 1024, 8)
        assert c == 8

    def test_panel_width_2d(self):
        assert panel_width_2d(16384) == 128
        assert panel_width_2d(96) == 32


class TestPlanDeterminism:
    def test_identical_plans(self):
        a = plan_lu(16384, 1024, mem_words=NODE_M)
        b = plan_lu(16384, 1024, mem_words=NODE_M)
        assert a == b

    def test_ranked_by_predicted_words(self):
        plan = plan_lu(16384, 1024, mem_words=NODE_M)
        words = [cfg.predicted_words for cfg in plan.ranked]
        assert words == sorted(words)
        assert plan.chosen == plan.ranked[0]

    def test_summary_mentions_choice(self):
        plan = plan_cholesky(8192, 256, mem_words=NODE_M)
        assert plan.chosen.impl in plan.summary()


class TestAgreementWithLegacySearch:
    """The deprecated best_conflux_config must be reproduced exactly by
    the planner's conflux-only search — one source of truth."""

    @pytest.mark.parametrize("n,p", TABLE2_POINTS)
    def test_table2_points(self, n, p):
        with pytest.warns(DeprecationWarning):
            from repro.analysis.harness import best_conflux_config

            c_old, v_old, cost_old = best_conflux_config(n, p)
        chosen = plan_lu(n, p, mem_words=NODE_M, impls=("conflux",)).chosen
        assert (chosen.params["c"], chosen.params["v"]) == (c_old, v_old)
        assert chosen.predicted_words == pytest.approx(cost_old)

    def test_tuned_c_below_max_replication_near_n(self):
        """When P approaches N the tuned c sits below P^(1/3)."""
        chosen = plan_lu(16384, 4096, mem_words=NODE_M,
                         impls=("conflux",)).chosen
        assert chosen.params["c"] < 16      # 4096^(1/3) = 16


class TestFeasibility:
    def test_feasible_margin_nonnegative(self):
        plan = plan_lu(4096, 64, mem_words=NODE_M, api_copies=3)
        for cfg in plan.ranked:
            assert cfg.mem_margin >= 0
            assert cfg.required_words <= NODE_M

    def test_unbounded_budget_infinite_margin(self):
        plan = plan_gemm(256, 16)
        assert math.isinf(plan.chosen.mem_margin)

    def test_infeasible_raises(self):
        with pytest.raises(NoFeasiblePlanError):
            plan_lu(16384, 64, mem_words=16384.0 * 16384 / 64 / 2)

    def test_infeasible_is_value_error(self):
        """The shim's historical contract: ValueError on no-fit."""
        assert issubclass(NoFeasiblePlanError, ValueError)

    def test_rejection_matches_api_gate(self, rng):
        """A budget the planner rejects is one the API's pre-flight
        gate rejects for every explicit impl at the same (N, P, M)."""
        n, p = 64, 4
        budget = 1.2 * n * n / p      # < required + api layout copies
        with pytest.raises(NoFeasiblePlanError):
            plan_lu(n, p, mem_words=budget, api_copies=4)
        for impl in ("conflux", "scalapack"):
            machine = Machine(p, mem_words=budget, enforce_memory=True)
            desc = ScaLAPACKDescriptor(m=n, n=n, mb=16, nb=16,
                                       prows=2, pcols=2)
            with pytest.raises(MemoryBudgetExceeded):
                pdgetrf(machine, "A", desc, v=16, nb=16, impl=impl)

    def test_planned_config_passes_api_gate(self, rng):
        """api_copies=4 (3 gate copies + the resident input) makes
        planner feasibility exactly the API gate: a planned config
        never trips the pre-flight reserve, even at a budget barely
        above its requirement."""
        n, p = 64, 4
        budget = plan_lu(n, p, api_copies=4).chosen.required_words * 1.05
        machine = _auto_machine(rng, n, p, budget)[0]
        res = pdgetrf(machine, "A",
                      ScaLAPACKDescriptor(m=n, n=n, mb=16, nb=16,
                                          prows=2, pcols=2), impl="auto")
        assert res.plan is not None
        assert float(machine.peak_words_per_rank().max()) <= budget


def _auto_machine(rng, n, p, budget, spd=False):
    machine = Machine(p, mem_words=budget, enforce_memory=True)
    desc = ScaLAPACKDescriptor(m=n, n=n, mb=16, nb=16, prows=2, pcols=2)
    lay = BlockCyclicLayout(n, n, 16, 16, ProcessorGrid2D(2, 2))
    if spd:
        g = rng.standard_normal((n, n))
        a = g @ g.T + n * np.eye(n)
    else:
        a = rng.standard_normal((n, n)) + n * np.eye(n)
    lay.scatter_from(machine, "A", a)
    return machine, desc, a


#: Smoke points for the auto-vs-explicit comparison (machine of 4 ranks
#: with a 2x2 descriptor grid, as the API tests use).
AUTO_POINTS = [(64, 4), (128, 4)]


class TestAutoImpl:
    """impl="auto": planner-routed execution on the caller's machine."""

    @pytest.mark.parametrize("n,p", AUTO_POINTS)
    def test_lu_completes_within_budget(self, rng, n, p):
        budget = 6.0 * n * n / p + 4096
        machine, desc, a = _auto_machine(rng, n, p, budget)
        res = pdgetrf(machine, "A", desc, impl="auto")
        err = np.linalg.norm(a[res.perm] - res.lower @ res.upper)
        assert err / np.linalg.norm(a) < 1e-11
        assert float(machine.peak_words_per_rank().max()) <= budget
        assert res.plan is not None and res.plan.chosen.mem_margin >= 0

    @pytest.mark.parametrize("n,p", AUTO_POINTS)
    def test_lu_counted_words_beat_explicit_impls(self, rng, n, p):
        budget = 6.0 * n * n / p + 4096
        machine, desc, _ = _auto_machine(rng, n, p, budget)
        auto = pdgetrf(machine, "A", desc, impl="auto")
        for impl in ("conflux", "scalapack"):
            m2, d2, _ = _auto_machine(rng, n, p, budget)
            explicit = pdgetrf(m2, "A", d2, v=16, nb=16, impl=impl)
            assert (auto.factorization_words
                    <= explicit.factorization_words)

    def test_cholesky_auto(self, rng):
        n, p = 64, 4
        budget = 6.0 * n * n / p + 4096
        machine, desc, a = _auto_machine(rng, n, p, budget, spd=True)
        auto = pdpotrf(machine, "A", desc, impl="auto")
        err = np.linalg.norm(a - auto.lower @ auto.lower.T)
        assert err / np.linalg.norm(a) < 1e-11
        for impl in ("confchox", "scalapack"):
            m2, d2, _ = _auto_machine(rng, n, p, budget, spd=True)
            explicit = pdpotrf(m2, "A", d2, v=16, nb=16, impl=impl)
            assert (auto.factorization_words
                    <= explicit.factorization_words)

    def test_gemm_auto(self, rng):
        n, p = 64, 4
        machine = Machine(p)
        desc = ScaLAPACKDescriptor(m=n, n=n, mb=16, nb=16,
                                   prows=2, pcols=2)
        lay = BlockCyclicLayout(n, n, 16, 16, ProcessorGrid2D(2, 2))
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        lay.scatter_from(machine, "A", a)
        lay.scatter_from(machine, "B", b)
        res = pdgemm(machine, "A", desc, "B", desc, impl="auto")
        assert np.allclose(res.lower, a @ b)
        s, c = res.plan.chosen.params["s"], res.plan.chosen.params["c"]
        assert n % (s * c) == 0

    def test_unknown_gemm_impl_rejected(self, rng):
        machine = Machine(4)
        desc = ScaLAPACKDescriptor(m=64, n=64, mb=16, nb=16,
                                   prows=2, pcols=2)
        with pytest.raises(ValueError, match="25d, auto"):
            pdgemm(machine, "A", desc, "B", desc, impl="nope")
