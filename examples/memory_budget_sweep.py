#!/usr/bin/env python
"""Memory-budget feasibility: the paper's M-words constraint, checked.

The lower bounds of conf_sc_KwasniewskiKBZS21 are parameterized by the
per-processor memory ``M``; every schedule in this repo declares a
closed-form ``required_words`` — model memory plus transient working
set — that a budget-enforced run is guaranteed to fit in.  This example

1. sweeps the planning-side feasibility table at paper scale (no
   numerics — the closed forms are free),
2. runs COnfLUX under ``Machine(..., enforce_memory=True)`` at its
   declared budget and prints the machine's own memory report, and
3. shows the failure mode: a budget below the actual working set
   raises ``MemoryBudgetExceeded`` with rank/step context.

Run:  python examples/memory_budget_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.harness import (
    NODE_MEM_WORDS,
    format_table,
    memory_feasibility,
)
from repro.engine import DistributedBackend, machine_for
from repro.factorizations import ConfluxSchedule
from repro.machine import MemoryBudgetExceeded


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Paper-scale feasibility sweep (closed forms, no execution).
    # ------------------------------------------------------------------
    cases = [(65536, 1024), (65536, 4096), (131072, 4096)]
    rows = []
    for fz in memory_feasibility(cases):
        rows.append([fz.schedule, fz.n, fz.nranks, fz.c,
                     fz.model_words, fz.required_words, fz.overhead,
                     "yes" if fz.fits_node else "NO"])
    print(format_table(
        ["schedule", "N", "P", "c", "model M", "required", "overhead",
         "fits node"],
        rows, title=f"Memory feasibility (node M = {NODE_MEM_WORDS:.3g} "
                    "words/rank)"))

    # ------------------------------------------------------------------
    # 2. A memory-enforced distributed run at the declared budget.
    # ------------------------------------------------------------------
    n, p, v, c = 64, 8, 8, 2
    rng = np.random.default_rng(7)
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    schedule = ConfluxSchedule(n, p, v=v, c=c)
    backend = DistributedBackend(machine_for(schedule))
    result = backend.run(schedule, a=a)
    report = backend.memory_report()
    err = np.linalg.norm(a[result.perm] - result.lower @ result.upper)
    print(f"\nEnforced COnfLUX N={n} P={p} c={c}")
    print(f"  residual ||PA - LU|| / ||A||  = "
          f"{err / np.linalg.norm(a):.2e}")
    print(f"  {report.summary()}")
    print(f"  budget utilization            = {report.utilization:.0%}")

    # ------------------------------------------------------------------
    # 3. An undersized budget is caught, with context.
    # ------------------------------------------------------------------
    peak = report.max_peak_words
    from repro.machine import Machine
    starved = Machine(p, mem_words=peak - 1, enforce_memory=True)
    try:
        DistributedBackend(starved).run(ConfluxSchedule(n, p, v=v, c=c), a=a)
    except MemoryBudgetExceeded as exc:
        print(f"\nBudget {peak - 1:.0f} (one word short of the peak):")
        print(f"  caught as expected -> rank {exc.rank}, step {exc.step!r}")
    else:
        raise AssertionError("undersized budget was not caught")


if __name__ == "__main__":
    main()
