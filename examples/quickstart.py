#!/usr/bin/env python
"""Quickstart: factorize a matrix with COnfLUX and COnfCHOX, verify the
factors, and inspect the communication counters.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro


def main() -> None:
    rng = np.random.default_rng(7)
    n, nranks = 256, 16

    # ------------------------------------------------------------------
    # LU with tournament pivoting on a 4 x 2 x 2 simulated 2.5D grid.
    # ------------------------------------------------------------------
    a = rng.standard_normal((n, n))
    result = repro.conflux_lu(n, nranks, v=16, c=2, a=a)

    pa = a[result.perm]
    residual = np.linalg.norm(pa - result.lower @ result.upper)
    residual /= np.linalg.norm(a)
    print(f"COnfLUX  N={n} P={nranks}")
    print(f"  residual ||PA - LU|| / ||A||     = {residual:.2e}")
    print(f"  communicated words (max rank)    = {result.max_recv_words:,.0f}")
    print(f"  communicated words (mean rank)   = {result.mean_recv_words:,.0f}")
    print(f"  total flops                      = {result.total_flops:,.0f}")

    # Compare against the parallel I/O lower bound of Section 6.1.
    bound = repro.lu_io_lower_bound(n, nranks, result.mem_words)
    print(f"  lower bound (Section 6.1)        = {bound:,.0f}")
    print(f"  measured / bound                 = "
          f"{result.max_recv_words / bound:.2f}x")

    # ------------------------------------------------------------------
    # Cholesky of an SPD matrix.
    # ------------------------------------------------------------------
    g = rng.standard_normal((n, n))
    spd = g @ g.T + n * np.eye(n)
    chol = repro.confchox_cholesky(n, nranks, v=16, c=2, a=spd)
    chol_res = np.linalg.norm(spd - chol.lower @ chol.lower.T)
    chol_res /= np.linalg.norm(spd)
    print(f"\nCOnfCHOX N={n} P={nranks}")
    print(f"  residual ||A - LL^T|| / ||A||    = {chol_res:.2e}")
    print(f"  communicated words (mean rank)   = {chol.mean_recv_words:,.0f}")

    # ------------------------------------------------------------------
    # Trace mode: paper-scale communication accounting, no numerics.
    # ------------------------------------------------------------------
    big = repro.conflux_lu(16384, 1024, v=32, c=8, execute=False)
    model = 16384 ** 3 / (1024 * big.mem_words ** 0.5)
    print(f"\nTrace N=16384 P=1024 (paper scale)")
    print(f"  mean volume per rank             = {big.mean_recv_words:,.0f}")
    print(f"  N^3/(P sqrt(M)) model            = {model:,.0f}")


if __name__ == "__main__":
    main()
