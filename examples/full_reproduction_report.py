#!/usr/bin/env python
"""Generate the complete reproduction report in one shot: bounds, volume
sweeps, model validation, reduction factors, time ranking, and ablations.

Run:  python examples/full_reproduction_report.py
"""

from repro.analysis.reporting import full_report


def main() -> None:
    print(full_report(quick=True))


if __name__ == "__main__":
    main()
