#!/usr/bin/env python
"""Derive an I/O lower bound for YOUR OWN kernel with the DAAP framework.

The paper's framework is general: any program whose statements satisfy
the disjoint access property gets a bound from the same machinery that
produced the LU and Cholesky results.  This example:

1. analyzes the built-in catalog kernels (TRSM, SYRK, LDL^T, GEMV);
2. defines a brand-new kernel — a Khatri-Rao-style contraction
   ``C[i,j] += A[i,k] * B[j,k] * w[k]`` — and derives its bound;
3. shows the framework *refusing* a stencil whose offset accesses break
   the disjoint access property (the boundary polyhedral methods cover).

Run:  python examples/custom_kernel_bound.py
"""

from __future__ import annotations

import math

from repro.analysis import format_table
from repro.lowerbounds import (
    ArrayAccess,
    DAAPError,
    Program,
    Statement,
    derive_gemv_bound,
    derive_ldlt_bound,
    derive_program_bound,
    derive_syrk_bound,
    derive_trsm_bound,
    jacobi2d_program,
)


def main() -> None:
    n, mem = 4096, 2.0 ** 14

    # ------------------------------------------------------------------
    # 1. The catalog.
    # ------------------------------------------------------------------
    rows = []
    for name, derive in [("TRSM", derive_trsm_bound),
                         ("SYRK", derive_syrk_bound),
                         ("LDL^T", derive_ldlt_bound),
                         ("GEMV", derive_gemv_bound)]:
        b = derive(n, mem)
        lead_rho = max(a.intensity.rho for a in b.per_statement.values())
        rows.append([name, lead_rho, b.sequential_bound])
    print(format_table(
        ["kernel", "max rho", f"Q bound (N={n}, M=2^14)"], rows,
        title="Catalog kernels through the Section-3 pipeline"))
    print(f"(sqrt(M)/2 = {math.sqrt(mem) / 2:.1f})\n")

    # ------------------------------------------------------------------
    # 2. A user-defined kernel.
    # ------------------------------------------------------------------
    contraction = Program("weighted-contraction", (Statement(
        name="S1",
        loop_vars=("i", "j", "k"),
        output=ArrayAccess("C", ("i", "j")),
        inputs=(ArrayAccess("C", ("i", "j")),
                ArrayAccess("A", ("i", "k")),
                ArrayAccess("B", ("j", "k")),
                ArrayAccess("w", ("k",))),
        num_vertices=lambda size: float(size) ** 3,
    ),))
    b = derive_program_bound(contraction, n, mem)
    rho = b.intensity("S1").rho
    print("Custom kernel  C[i,j] += A[i,k] * B[j,k] * w[k]:")
    print(f"  rho = {rho:.2f}  (the weight vector barely moves the "
          f"matmul-shaped optimum {math.sqrt(mem) / 2:.1f})")
    print(f"  Q >= {b.sequential_bound:,.0f} words at N={n}, M=2^14\n")

    # ------------------------------------------------------------------
    # 3. The framework boundary.
    # ------------------------------------------------------------------
    print("Stencil check (2D Jacobi):")
    try:
        jacobi2d_program()
    except DAAPError as exc:
        print(f"  rejected as expected -> {exc}")


if __name__ == "__main__":
    main()
