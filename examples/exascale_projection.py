#!/usr/bin/env python
"""Exascale projection (the paper's "Implications for Exascale").

Figure 8c extrapolates the validated communication models to a
full-machine run of the Summit supercomputer (P = 262,144 ranks) and
predicts a 2.1x communication reduction over the second-best library.
This example reproduces that extrapolation: traced volumes at machine
scale, model-predicted volumes beyond it, and the reduction factor of
COnfLUX over the best competitor at each scale.

Run:  python examples/exascale_projection.py
"""

from __future__ import annotations

from repro.analysis import fig8c_comm_reduction, format_table


def main() -> None:
    rows_raw = fig8c_comm_reduction(
        p_sweep=(64, 256, 1024), n_sweep=(16384,),
        predicted_cells=((16384, 4096), (32768, 32768),
                         (131072, 262144)))
    rows = [[r["n"], r["nranks"], r["kind"], r["second_best"],
             r["reduction"]] for r in rows_raw]
    print(format_table(
        ["N", "ranks", "kind", "second-best", "COnfLUX reduction"],
        rows, title="Communication reduction of COnfLUX (Figure 8c)",
        floatfmt="{:.2f}"))
    print("\nThe reduction grows with P: measured up to ~1.5x at 1,024"
          "\nranks (paper: 1.42x), predicted ~2x at the full-Summit"
          "\nscale P = 262,144 (paper: 2.1x).  The 2.5D replication"
          "\ndepth c keeps widening the gap over the N^2/sqrt(P) 2D"
          "\ncodes, and CANDMC's 5x constant keeps it behind.")


if __name__ == "__main__":
    main()
