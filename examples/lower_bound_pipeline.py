#!/usr/bin/env python
"""The Figure-2 pipeline, end to end: input program -> cDAG -> X-partition
intensity -> I/O lower bound -> pebbled schedule.

Walks LU factorization through every stage of the paper's framework:

1. the DAAP form of the two LU statements (Section 2.2);
2. per-statement computational intensities (Sections 3, Lemma 6);
3. the optimization problem max |H| s.t. |Dom(H)| <= X (Section 3.2);
4. sequential and parallel bounds (Sections 5-6);
5. a validated red-blue pebbling of the literal cDAG whose measured I/O
   respects the bound.

Run:  python examples/lower_bound_pipeline.py
"""

from __future__ import annotations

import math

from repro.lowerbounds import (
    derive_lu_bound,
    lu_io_lower_bound,
    lu_program,
    max_subcomputation,
    statement_intensity,
)
from repro.pebbles import lu_cdag, run_greedy


def main() -> None:
    mem = 1024.0

    # Stage 1: the input program.
    prog = lu_program()
    print("DAAP form of LU (Figure 3):")
    for s in prog.statements:
        groups = s.input_variable_groups()
        print(f"  {s.name}: loop vars {s.loop_vars}, "
              f"input access dims {[len(g) for g in groups]}")

    # Stage 2: intensities.
    print(f"\nComputational intensities at M = {mem:.0f}:")
    for s in prog.statements:
        res = statement_intensity(s, mem)
        x0 = "inf" if math.isinf(res.x0) else f"{res.x0:.0f}"
        print(f"  rho_{s.name} = {res.rho:.3f}   (X0 = {x0}, "
              f"limited by {res.limited_by})")
    print(f"  [paper: rho_S1 = 1, rho_S2 = sqrt(M)/2 = "
          f"{math.sqrt(mem) / 2:.1f} at X0 = 3M = {3 * mem:.0f}]")

    # Stage 3: the optimization problem, explicitly.
    x = 3 * mem
    sol = max_subcomputation(("k", "i", "j"),
                             [("i", "j"), ("i", "k"), ("k", "j")], x)
    print(f"\n|H_max| at X = 3M: chi = {sol.chi:.0f} "
          f"(= (X/3)^(3/2) = {(x / 3) ** 1.5:.0f}); "
          f"domains {dict((k, round(v, 1)) for k, v in sol.domain_sizes.items())}")

    # Stage 4: the bounds.
    n, p = 8192, 64
    bound = derive_lu_bound(n, mem, p)
    print(f"\nParallel LU bound, N={n}, P={p}, M={mem:.0f}:")
    print(f"  derived through the pipeline : {bound.parallel_bound:,.0f}")
    print(f"  closed form (Section 6.1)    : "
          f"{lu_io_lower_bound(n, p, mem):,.0f}")

    # Stage 5: pebble the literal cDAG at a toy size.
    n_small, m_small = 8, 16
    game = run_greedy(lu_cdag(n_small), m_small)
    small_bound = derive_lu_bound(n_small, m_small).sequential_bound
    print(f"\nRed-blue pebbling of the LU cDAG (N={n_small}, M={m_small}):")
    print(f"  measured I/O (greedy schedule): {game.io_cost}")
    print(f"  derived lower bound           : {small_bound:.1f}")
    print(f"  schedule is valid, used <= M red pebbles "
          f"(peak {game.max_red}), and blue-pebbled all outputs.")


if __name__ == "__main__":
    main()
