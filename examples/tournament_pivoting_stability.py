#!/usr/bin/env python
"""Numerical stability of tournament pivoting vs partial pivoting.

Section 7.3 claims tournament pivoting "is shown to be as stable as
partial pivoting" (Grigori et al.), unlike incremental pivoting.  This
example measures backward-error residuals and growth factors of COnfLUX's
tournament-pivoted LU against partial-pivoting LU over several matrix
families, including the classic hard cases.

Run:  python examples/tournament_pivoting_stability.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.factorizations import conflux_lu
from repro.factorizations.baselines import scalapack_lu


def matrix_families(n: int, rng: np.random.Generator):
    yield "gaussian", rng.standard_normal((n, n))
    yield "uniform", rng.uniform(-1, 1, (n, n))
    yield "ill-scaled", (rng.standard_normal((n, n))
                         * np.logspace(-8, 8, n)[None, :])
    # Wilkinson-style growth matrix (worst case for partial pivoting).
    w = np.tril(-np.ones((n, n)), -1) + np.eye(n)
    w[:, -1] = 1.0
    yield "wilkinson", w
    yield "orthogonal", np.linalg.qr(rng.standard_normal((n, n)))[0]


def residual(a, res) -> float:
    pa = a[res.perm]
    return float(np.linalg.norm(pa - res.lower @ res.upper)
                 / np.linalg.norm(a))


def growth(a, res) -> float:
    return float(np.abs(res.upper).max() / np.abs(a).max())


def main() -> None:
    n, p, v, c = 128, 8, 16, 2
    rng = np.random.default_rng(11)
    rows = []
    for name, a in matrix_families(n, rng):
        tp = conflux_lu(n, p, v=v, c=c, a=a)
        pp = scalapack_lu(n, 4, nb=16, a=a)
        rows.append([name, residual(a, tp), residual(a, pp),
                     growth(a, tp), growth(a, pp)])
    print(format_table(
        ["family", "tournament resid", "partial resid",
         "tournament growth", "partial growth"],
        rows,
        title=f"Backward error and growth, N={n} "
              f"(tournament: v={v}, {p} ranks)",
        floatfmt="{:.3g}"))
    print("\nTournament pivoting tracks partial pivoting within a small "
          "factor on every family\n(the Wilkinson matrix exhibits the "
          "expected 2^(N-1)-type growth for BOTH).")


if __name__ == "__main__":
    main()
