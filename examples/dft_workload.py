#!/usr/bin/env python
"""A density-functional-theory-shaped workload (the paper's motivating
application domain).

Section 9: "In physical chemistry or density functional theory (DFT),
simulations require factorizing matrices of atom interactions, yielding
sizes ranging from N = 1,024 up to N = 131,072" — e.g. the RPA
calculations of CP2K, whose overlap matrices are SPD and get Cholesky-
factorized on every SCF step.

This example builds a synthetic overlap-like SPD matrix (exponentially
decaying off-diagonal interactions between "atoms" on a 3D lattice),
factorizes it with COnfCHOX at a small executable size, and then sweeps
the paper-scale DFT sizes in trace mode to show where 2.5D replication
pays off against the 2D libraries DFT codes traditionally call.

Run:  python examples/dft_workload.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table, max_replication, trace_cholesky
from repro.factorizations import confchox_cholesky


def overlap_matrix(n_atoms: int, decay: float = 0.7,
                   seed: int = 3) -> np.ndarray:
    """Synthetic DFT overlap matrix: atoms on a cubic lattice, Gaussian
    overlaps decaying with distance, diagonally shifted to be SPD."""
    rng = np.random.default_rng(seed)
    side = int(round(n_atoms ** (1.0 / 3.0))) + 1
    coords = np.array([(x, y, z) for x in range(side) for y in range(side)
                       for z in range(side)][:n_atoms], dtype=float)
    coords += 0.05 * rng.standard_normal(coords.shape)
    d2 = ((coords[:, None, :] - coords[None, :, :]) ** 2).sum(axis=2)
    s = np.exp(-decay * d2)
    return s + n_atoms ** 0.5 * np.eye(n_atoms)


def main() -> None:
    # ------------------------------------------------------------------
    # Executable: a 512-orbital system on 16 simulated ranks.
    # ------------------------------------------------------------------
    n, p = 512, 16
    s = overlap_matrix(n)
    res = confchox_cholesky(n, p, v=32, c=2, a=s)
    err = np.linalg.norm(s - res.lower @ res.lower.T) / np.linalg.norm(s)
    cond = np.linalg.cond(s)
    print(f"Synthetic overlap matrix: N={n}, cond(S) = {cond:.1e}")
    print(f"COnfCHOX residual ||S - LL^T||/||S|| = {err:.2e}")
    print(f"Communicated words per rank (mean)  = "
          f"{res.mean_recv_words:,.0f}\n")

    # ------------------------------------------------------------------
    # Paper-scale DFT sweep (trace mode): N = 1k .. 131k.
    # ------------------------------------------------------------------
    rows = []
    for n_big in (4096, 16384, 65536, 131072):
        for p_big in (64, 512):
            if n_big * n_big / p_big > 32 * 2 ** 30 / 8:
                continue
            c = max_replication(p_big, n_big)
            ours = trace_cholesky("confchox", n_big, p_big)
            mkl = trace_cholesky("mkl-chol", n_big, p_big)
            rows.append([n_big, p_big, c,
                         ours.mean_recv_words * 8 / 1e9,
                         mkl.mean_recv_words * 8 / 1e9,
                         mkl.mean_recv_words / ours.mean_recv_words])
    print(format_table(
        ["N", "ranks", "c", "COnfCHOX GB/rank", "2D GB/rank", "reduction"],
        rows, title="DFT-scale Cholesky communication (trace mode)"))


if __name__ == "__main__":
    main()
