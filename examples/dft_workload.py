#!/usr/bin/env python
"""A density-functional-theory-shaped workload (the paper's motivating
application domain), planned and executed as one program.

Section 9: "In physical chemistry or density functional theory (DFT),
simulations require factorizing matrices of atom interactions, yielding
sizes ranging from N = 1,024 up to N = 131,072" — e.g. the RPA
calculations of CP2K, whose overlap matrices are SPD and get Cholesky-
factorized on every SCF step.  Real DFT traffic is a *pipeline*: build
an interaction matrix (GEMM), factorize the overlap (Cholesky — twice,
successive SCF steps reuse the operand), LU-factorize the freshly
built interaction matrix.

This example expresses that pipeline as a workload DAG, plans it
*jointly* — every node's candidates scored in one batched pass, DAG
assignments ranked by counted words *including* the closed-form COSTA
layout-conversion cost between stages — and executes the plan
end-to-end through :func:`repro.api.run_workload` on the simulated
machine, where still-resident native tiles are adopted whenever
consecutive nodes agree on a layout.  A paper-scale sweep then shows
the joint charge against independently planned per-call schedules.

Run:  python examples/dft_workload.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.analysis.harness import dft_workload_request
from repro.api import run_workload
from repro.layouts import BlockCyclicLayout, ScaLAPACKDescriptor
from repro.machine import Machine, ProcessorGrid2D
from repro.planner import plan_workload


def overlap_matrix(n_atoms: int, decay: float = 0.7,
                   seed: int = 3) -> np.ndarray:
    """Synthetic DFT overlap matrix: atoms on a cubic lattice, Gaussian
    overlaps decaying with distance, diagonally shifted to be SPD."""
    rng = np.random.default_rng(seed)
    side = int(round(n_atoms ** (1.0 / 3.0))) + 1
    coords = np.array([(x, y, z) for x in range(side) for y in range(side)
                       for z in range(side)][:n_atoms], dtype=float)
    coords += 0.05 * rng.standard_normal(coords.shape)
    d2 = ((coords[:, None, :] - coords[None, :, :]) ** 2).sum(axis=2)
    s = np.exp(-decay * d2)
    return s + n_atoms ** 0.5 * np.eye(n_atoms)


def main() -> None:
    # ------------------------------------------------------------------
    # Executable: a 128-orbital system on 4 simulated ranks, planned
    # jointly and run end-to-end.
    # ------------------------------------------------------------------
    n, p = 128, 4
    request = dft_workload_request(n, p)
    plan = plan_workload(request)
    print(plan.summary())
    print()

    rng = np.random.default_rng(7)
    s = overlap_matrix(n)
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    b = rng.standard_normal((n, n)) + n * np.eye(n)

    machine = Machine(p)
    desc = ScaLAPACKDescriptor(m=n, n=n, mb=32, nb=32, prows=2, pcols=2)
    layout = BlockCyclicLayout(n, n, 32, 32, ProcessorGrid2D(2, 2))
    layout.scatter_from(machine, "A", a)
    layout.scatter_from(machine, "B", b)
    layout.scatter_from(machine, "S", s)

    result = run_workload(machine, plan, {"A": desc, "B": desc, "S": desc})

    cond = np.linalg.cond(s)
    print(f"Synthetic overlap matrix: N={n}, cond(S) = {cond:.1e}")
    lchol = result.results["f1"].lower
    err_chol = np.linalg.norm(s - lchol @ lchol.T) / np.linalg.norm(s)
    print(f"Cholesky residual ||S - LL^T||/||S|| = {err_chol:.2e}")
    k = a @ b
    res_lu = result.results["lu"]
    err_lu = (np.linalg.norm(k[res_lu.perm] - res_lu.lower @ res_lu.upper)
              / np.linalg.norm(k))
    print(f"LU residual on k = A@B               = {err_lu:.2e}")
    print(f"COSTA reshuffle words (counted)      = "
          f"{result.reshuffle_words:,.0f}")
    for consumer, operand in result.reused:
        print(f"  reused resident native tiles: {operand} -> {consumer}")
    print()

    # ------------------------------------------------------------------
    # Paper-scale DFT sweep: the same chain planned jointly at the
    # sizes Section 9 quotes, vs independent per-call planning.
    # ------------------------------------------------------------------
    rows = []
    for n_big in (4096, 16384, 65536):
        for p_big in (64, 1024):
            if n_big * n_big / p_big > 32 * 2 ** 30 / 8:
                continue
            big = plan_workload(dft_workload_request(n_big, p_big))
            joint = big.chosen.total_words
            indep = big.independent.total_words
            rows.append([n_big, p_big,
                         joint * 8 / 1e9, indep * 8 / 1e9,
                         big.chosen.conversion_words * 8 / 1e9,
                         indep / joint])
    print(format_table(
        ["N", "ranks", "joint GB/rank", "indep GB/rank",
         "conversion GB/rank", "reduction"],
        rows, title="DFT workload chain, jointly planned (counted words "
                    "incl. cross-stage conversion)"))


if __name__ == "__main__":
    main()
