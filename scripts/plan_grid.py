#!/usr/bin/env python
"""Plan the smoke (N, P, M) grid — and optionally build it into an
atlas (``make plan`` / ``make atlas``).

A fast, human-readable view of :mod:`repro.planner` — and CI's check
that planning stays total: every feasible grid point must produce a
plan, infeasible points must be *reported* infeasible (never crash),
and each plan's predicted volume must be the minimum of its ranked
alternatives.

``--atlas DIR`` turns the run into the **atlas builder**: every grid
point's plan (and every infeasibility) is persisted into a
content-addressed :class:`~repro.planner.PlanAtlas` under ``DIR``, and
the build is verified end-to-end — a fresh
:class:`~repro.planner.PlanService` front-end must serve every lattice
point **bit-identical** to the live plan computed in the same run
(the atlas correctness contract CI gates here and in ``bench_smoke``).
Builds are resumable: rebuilding over an existing directory reuses
every point the current code fingerprint has already planned.

``--budget-s`` is a wall-time gate: planning the whole grid (plus the
atlas build, when requested) must finish inside the budget, so a
regression that drops the batched closed-form path (e.g. per-config
interpreter work sneaking back into scoring) fails the build rather
than just drifting the bench snapshot.  The grid plans in well under a
second batched; the default CI budget leaves two orders of magnitude
headroom for runner noise.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.harness import NODE_MEM_WORDS, format_table  # noqa: E402
from repro.planner import (  # noqa: E402
    NoFeasiblePlanError,
    PlanAtlas,
    PlanRequest,
    PlanService,
    plan_request,
)

#: The smoke grid: small enough to plan in milliseconds, wide enough to
#: exercise replication choices and the memory gate (the last budget is
#: deliberately too small for its N).
GRID = [
    # (n, p, mem_words)
    (4096, 64, NODE_MEM_WORDS),
    (16384, 1024, NODE_MEM_WORDS),
    (65536, 4096, NODE_MEM_WORDS),
    (16384, 64, 16384.0 * 16384.0 / 64 / 2),   # M < N^2/P: infeasible
]

OPS = ("lu", "cholesky", "gemm")

#: api_copies for every grid/lattice point (the builder and the smoke
#: view plan the same questions, so atlas keys match).
API_COPIES = 3


def lattice() -> list[PlanRequest]:
    """The smoke grid as canonical atlas lattice points."""
    return [PlanRequest(op, n, p, mem, api_copies=API_COPIES)
            for n, p, mem in GRID for op in OPS]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget-s", type=float, default=None, metavar="S",
        help="fail if planning the whole grid (and building the atlas, "
             "with --atlas) takes longer than S seconds of wall time "
             "(Makefile pass-through: make plan PLAN_BUDGET_S=S)")
    parser.add_argument(
        "--atlas", type=pathlib.Path, default=None, metavar="DIR",
        help="build the grid into a plan atlas under DIR and verify a "
             "PlanService serves every lattice point bit-identical to "
             "live planning (Makefile: make atlas ATLAS_DIR=DIR)")
    args = parser.parse_args(argv)
    rows = []
    failures = []
    live: dict[PlanRequest, object] = {}
    t0 = time.perf_counter()
    for request in lattice():
        try:
            plan = plan_request(request)
        except NoFeasiblePlanError:
            live[request] = None
            rows.append([request.op, request.n, request.p,
                         f"{request.budget:.3g}", "infeasible",
                         "-", float("nan"), float("nan")])
            continue
        live[request] = plan
        chosen = plan.chosen
        pstr = ",".join(f"{k}={v}"
                        for k, v in sorted(chosen.params.items()))
        rows.append([request.op, request.n, request.p,
                     f"{request.budget:.3g}", chosen.impl, pstr,
                     chosen.predicted_words, chosen.predicted_time_s])
        if any(alt.predicted_words < chosen.predicted_words
               for alt in plan.alternatives):
            failures.append(
                f"{request.op} N={request.n} P={request.p}: chosen config "
                "is not volume-minimal among the ranked alternatives")

    if args.atlas is not None:
        atlas = PlanAtlas(args.atlas)
        stats = atlas.build(lattice())
        print(f"[atlas {args.atlas}: {stats.points} points, "
              f"{stats.built} built ({stats.infeasible} infeasible), "
              f"{stats.reused} reused, {stats.wall_s:.3f}s]")
        # The correctness contract: a service over the fresh atlas
        # serves every lattice point bit-identical to live planning.
        service = PlanService(atlas=atlas)
        for request, expected in live.items():
            try:
                served = service.plan(request)
            except NoFeasiblePlanError:
                served = None
            if served != expected:
                failures.append(
                    f"atlas serve mismatch at {request.token()}: served "
                    f"plan != live plan — the bit-identical contract broke")
        if service.stats.live_plans:
            failures.append(
                f"{service.stats.live_plans} lattice lookups fell back to "
                "live planning — the atlas build missed points")

    wall = time.perf_counter() - t0
    print(format_table(
        ["problem", "N", "P", "M (words)", "impl", "params",
         "pred words", "pred time s"],
        rows, title="Planner picks over the smoke (N, P, M) grid"))
    print(f"[planned {len(rows)} points in {wall:.3f}s]")
    if args.budget_s is not None and wall > args.budget_s:
        failures.append(
            f"planner grid took {wall:.2f}s, over the {args.budget_s:g}s "
            "wall-time budget — the batched closed-form scoring path "
            "regressed")
    for f in failures:
        print(f"ERROR: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
