#!/usr/bin/env python
"""Print the planner's pick over a smoke (N, P, M) grid (``make plan``).

A fast, human-readable view of :mod:`repro.planner` — and CI's check
that planning stays total: every feasible grid point must produce a
plan, infeasible points must be *reported* infeasible (never crash),
and each plan's predicted volume must be the minimum of its ranked
alternatives.

``--budget-s`` turns the run into a wall-time gate: planning the whole
grid must finish inside the budget, so a regression that drops the
batched closed-form path (e.g. per-config interpreter work sneaking
back into scoring) fails the build rather than just drifting the bench
snapshot.  The grid plans in well under a second batched; the default
CI budget leaves two orders of magnitude headroom for runner noise.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.harness import NODE_MEM_WORDS, format_table  # noqa: E402
from repro.planner import (  # noqa: E402
    NoFeasiblePlanError,
    plan_cholesky,
    plan_gemm,
    plan_lu,
)

#: The smoke grid: small enough to plan in milliseconds, wide enough to
#: exercise replication choices and the memory gate (the last budget is
#: deliberately too small for its N).
GRID = [
    # (n, p, mem_words)
    (4096, 64, NODE_MEM_WORDS),
    (16384, 1024, NODE_MEM_WORDS),
    (65536, 4096, NODE_MEM_WORDS),
    (16384, 64, 16384.0 * 16384.0 / 64 / 2),   # M < N^2/P: infeasible
]

PLANNERS = [("lu", plan_lu), ("cholesky", plan_cholesky),
            ("gemm", plan_gemm)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget-s", type=float, default=None, metavar="S",
        help="fail if planning the whole grid takes longer than S "
             "seconds of wall time (Makefile pass-through: "
             "make plan PLAN_BUDGET_S=S)")
    args = parser.parse_args(argv)
    rows = []
    failures = []
    t0 = time.perf_counter()
    for n, p, mem in GRID:
        for label, planner in PLANNERS:
            try:
                plan = planner(n, p, mem_words=mem, api_copies=3)
            except NoFeasiblePlanError:
                rows.append([label, n, p, f"{mem:.3g}", "infeasible",
                             "-", float("nan"), float("nan")])
                continue
            chosen = plan.chosen
            pstr = ",".join(f"{k}={v}"
                            for k, v in sorted(chosen.params.items()))
            rows.append([label, n, p, f"{mem:.3g}", chosen.impl, pstr,
                        chosen.predicted_words, chosen.predicted_time_s])
            if any(alt.predicted_words < chosen.predicted_words
                   for alt in plan.alternatives):
                failures.append(
                    f"{label} N={n} P={p}: chosen config is not "
                    "volume-minimal among the ranked alternatives")
    wall = time.perf_counter() - t0
    print(format_table(
        ["problem", "N", "P", "M (words)", "impl", "params",
         "pred words", "pred time s"],
        rows, title="Planner picks over the smoke (N, P, M) grid"))
    print(f"[planned {len(rows)} points in {wall:.3f}s]")
    if args.budget_s is not None and wall > args.budget_s:
        failures.append(
            f"planner grid took {wall:.2f}s, over the {args.budget_s:g}s "
            "wall-time budget — the batched closed-form scoring path "
            "regressed")
    for f in failures:
        print(f"ERROR: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
