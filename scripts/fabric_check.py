#!/usr/bin/env python
"""CI's two-worker fabric gate (``make fabric-check``).

Shards the bench sweep matrix across ``--workers`` concurrent worker
*processes* sharing one cache directory — the coordinator only
publishes and reconciles, it computes nothing — then gates:

* every batch completed exactly once (done-marker ledger: task counts
  sum to the published total);
* both workers actually participated (with >= 2 batches each would be
  scheduler luck; the gate only requires the ledger's worker set is
  non-trivial when there are enough batches to share);
* the reconciled, order-preserving result list produces the sweep
  checksum **bit-identical** to the committed ``BENCH_engine.json``
  engine checksum — distributed == pool == serial, the PR-4 contract
  extended across processes;
* a second reconcile pass recomputes nothing (resume-from-cache).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import obs  # noqa: E402
from repro.analysis.harness import sweep_tasks  # noqa: E402
from repro.runtime import ResultCache  # noqa: E402
from repro.runtime.fabric import (  # noqa: E402
    DistributedSweepExecutor,
    publish_run,
)

REPO = pathlib.Path(__file__).resolve().parents[1]

#: Same matrix as scripts/bench_smoke.py CASES.
CASES = [(65536, 1024), (65536, 4096), (131072, 4096)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="concurrent worker processes (default 2)")
    parser.add_argument("--ttl", type=float, default=20.0, metavar="S")
    parser.add_argument("--timeout-s", type=float, default=300.0,
                        metavar="S")
    args = parser.parse_args(argv)

    baseline = json.loads((REPO / "BENCH_engine.json").read_text())
    expected = baseline["engine"]["checksum"]

    tasks = sweep_tasks(CASES)
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        # Publish first, so the workers find the manifest immediately:
        # one batch per task — with 2 workers and 3 batches, sharing is
        # guaranteed when both get scheduled.
        run = publish_run(tmp, tasks, batch_size=1)
        print(f"published run {run.run_id}: {len(tasks)} tasks, "
              f"{len(run.batches)} batches")

        t0 = time.time()
        procs = [
            subprocess.Popen(
                [sys.executable, str(REPO / "scripts" / "sweep_worker.py"),
                 "--cache", tmp, "--run", run.run_id,
                 "--ttl", str(args.ttl),
                 "--worker-id", f"ci-worker-{i}"])
            for i in range(args.workers)
        ]
        for proc in procs:
            proc.wait(timeout=args.timeout_s)
            if proc.returncode != 0:
                failures.append(
                    f"worker exited with {proc.returncode}")
        wall = time.time() - t0
        print(f"{args.workers} workers finished in {wall:.1f}s")

        if not run.complete():
            failures.append(
                f"run incomplete: {len(run.done_batches())}/"
                f"{len(run.batches)} batches done")
        else:
            # The done-marker ledger: every task exactly once.
            markers = [json.loads(run.done_path(b).read_text())
                       for b in range(len(run.batches))]
            ledger_tasks = sum(m["tasks"] for m in markers)
            by_worker = {}
            for m in markers:
                by_worker[m["worker"]] = by_worker.get(m["worker"], 0) + 1
            print(f"ledger: {ledger_tasks} tasks by {by_worker}, "
                  f"stolen={sum(m['stolen_from'] is not None for m in markers)}")
            if ledger_tasks != len(tasks):
                failures.append(
                    f"ledger accounts {ledger_tasks} tasks, published "
                    f"{len(tasks)} — not exactly-once")
            if len(run.batches) >= args.workers * 2 \
                    and len(by_worker) < 2:
                failures.append(
                    f"only {len(by_worker)} worker(s) completed batches "
                    "— the matrix did not shard")

        # Coordinator reconcile: everything must come from the cache.
        cache = ResultCache(tmp)
        coordinator = DistributedSweepExecutor(
            cache, workers=0, ttl_s=args.ttl, timeout_s=args.timeout_s,
            batch_size=1)
        results = coordinator.run(tasks)
        report = coordinator.last_report
        checksum = sum(r.mean_recv_words for case in results
                       for r in case)
        retried = obs.metrics().counter("fabric.tasks.retried").value
        print(f"reconciled: checksum={checksum}, committed={expected}, "
              f"reconcile cache hits={cache.hits}, retried={retried}")
        print(f"report: {report}")
        if checksum != expected:
            failures.append(
                f"fabric checksum {checksum} != committed engine "
                f"checksum {expected} — the distributed path changed "
                "the sweep semantics")
        if cache.hits < len(tasks):
            failures.append(
                f"reconcile served only {cache.hits}/{len(tasks)} tasks "
                "from the cache — the resume contract broke")
        if retried:
            failures.append(
                f"{retried} tasks recomputed during reconcile — results "
                "were missing despite done markers")

    for f in failures:
        print(f"ERROR: {f}", file=sys.stderr)
    if not failures:
        print("fabric check OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
