#!/usr/bin/env python
"""Drive every instrumented layer and export the telemetry
(``make trace``).

Enables :mod:`repro.obs`, runs one representative slice of each layer —
live + atlas-served planning, cached sweep execution (serial and
process-pool, so worker spans ship home and re-parent), a ScaLAPACK-
style ``pdgetrf`` call (gate / prep / backend / writeback phases over
real superstep execution), and the DFT workload chain — then writes:

* ``trace.json`` — Chrome trace-event JSON of the whole span tree plus
  the engine run's per-rank superstep comm counters and memory report
  on a synthetic superstep timeline.  Load it in ``chrome://tracing``
  or https://ui.perfetto.dev.
* ``metrics.json`` — the flat metrics snapshot (global registry plus
  the default plan service's resolution counters).

Exits non-zero if the trace comes out empty or any expected span layer
(planner / cache / executor / fabric / pd phases / engine / workload) is
missing — CI runs this and archives ``trace.json`` as a workflow
artifact, so every main build leaves an inspectable timeline behind.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro import obs  # noqa: E402
from repro.obs.export import metrics_json, write_chrome_trace  # noqa: E402

#: Span categories the trace must cover — one per instrumented layer.
REQUIRED_CATS = {"planner", "cache", "executor", "pd", "pd-phase",
                 "engine", "workload", "fabric"}

#: Sweep slice: two paper-plane points, 2.5D LU + Cholesky.
SWEEP_POINTS = [(4096, 64), (8192, 256)]

#: Engine slice: one distributed COnfLUX run small enough to execute
#: densely while still producing a multi-superstep step log.
ENGINE_N, ENGINE_P = 32, 4


def _sweep_tasks():
    from repro.runtime.executor import SweepTask

    tasks = [SweepTask(kind, impl, n, p)
             for n, p in SWEEP_POINTS
             for kind, impl in (("lu", "conflux"), ("cholesky", "confchox"))]
    tasks.append(SweepTask("workload", "dft", 64, 4,
                           extra=(("execute", True),)))
    return tasks


def _drive_planner() -> None:
    """Live planning, a cold atlas build, and atlas-served queries —
    the planner + cache span sources."""
    from repro.analysis.harness import NODE_MEM_WORDS
    from repro.planner import PlanAtlas, PlanRequest, PlanService

    lattice = [PlanRequest(op, n, p, NODE_MEM_WORDS, api_copies=3)
               for n, p in SWEEP_POINTS for op in ("lu", "cholesky", "gemm")]
    with tempfile.TemporaryDirectory() as tmp:
        atlas = PlanAtlas(tmp)
        atlas.build(lattice)
        service = PlanService(atlas=atlas)
        for req in lattice:
            service.plan(req)          # atlas hits
        for req in lattice:
            service.plan(req)          # LRU hits


def _drive_executors(workers: int) -> None:
    """A cached sweep, twice serially (miss then hit) and once on the
    pool — executor + cache spans, including shipped worker spans."""
    from repro.runtime import ProcessPoolSweepExecutor, ResultCache
    from repro.runtime.executor import SerialExecutor

    tasks = _sweep_tasks()
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        SerialExecutor(cache=cache).run(tasks)     # all misses
        SerialExecutor(cache=cache).run(tasks)     # all hits
    with ProcessPoolSweepExecutor(max_workers=workers) as pool:
        pool.run(tasks[:4])


def _drive_fabric() -> None:
    """A small work-stealing fabric run (coordinator participating
    in-process, so its run/worker/batch/reconcile spans land in this
    telemetry) over a shared cache directory."""
    from repro.runtime import ResultCache
    from repro.runtime.fabric import DistributedSweepExecutor

    tasks = _sweep_tasks()[:2]
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        DistributedSweepExecutor(cache, workers=0).run(tasks)
        cache.gc()


def _drive_engine():
    """A real distributed run through the pd entry point plus one
    explicit backend run; returns (step_log, memory_report)."""
    from repro.api import pdgetrf
    from repro.engine.backends import DistributedBackend
    from repro.factorizations import ConfluxSchedule
    from repro.layouts import BlockCyclicLayout, ScaLAPACKDescriptor
    from repro.machine import Machine, ProcessorGrid2D

    rng = np.random.default_rng(0)
    n, p = ENGINE_N, ENGINE_P
    machine = Machine(p)
    desc = ScaLAPACKDescriptor(m=n, n=n, mb=16, nb=16, prows=2, pcols=2)
    layout = BlockCyclicLayout(n, n, 16, 16, ProcessorGrid2D(2, 2))
    a = rng.standard_normal((n, n)) + n * np.eye(n)
    layout.scatter_from(machine, "A", a)
    pdgetrf(machine, "A", desc, v=8)

    backend = DistributedBackend(Machine(p))
    backend.run(ConfluxSchedule(n, p, v=8, c=1),
                a=rng.standard_normal((n, n)) + n * np.eye(n))
    return machine.stats.steps, backend.memory_report()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=".trace-smoke", metavar="DIR",
                        help="output directory (default: .trace-smoke)")
    parser.add_argument("--workers", type=int, default=2, metavar="N",
                        help="pool width for the traced executor slice")
    args = parser.parse_args(argv)
    out = pathlib.Path(args.out)

    obs.enable()
    _drive_planner()
    _drive_executors(args.workers)
    _drive_fabric()
    step_log, memory_report = _drive_engine()
    obs.disable()

    trace_path = write_chrome_trace(
        out / "trace.json", obs.default_telemetry(),
        step_log=step_log, memory_report=memory_report)
    from repro.planner.service import default_service
    snapshot = metrics_json(obs.metrics(), default_service().metrics,
                            prefix=("", "default_service"))
    metrics_path = out / "metrics.json"
    metrics_path.write_text(json.dumps(snapshot, indent=1) + "\n")

    doc = json.loads(trace_path.read_text())
    events = doc["traceEvents"]
    cats = {e["cat"] for e in events}
    by_cat = {c: sum(1 for e in events if e["cat"] == c)
              for c in sorted(cats)}
    print(f"trace:   {trace_path}  ({len(events)} events)")
    print(f"metrics: {metrics_path}  ({len(snapshot)} series)")
    for cat, count in by_cat.items():
        print(f"  {cat:12s} {count}")

    failures = []
    if not events:
        failures.append("trace is empty — telemetry recorded nothing")
    missing = REQUIRED_CATS - cats
    if missing:
        failures.append(
            f"span layers missing from the trace: {sorted(missing)}")
    for f in failures:
        print(f"ERROR: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
