#!/usr/bin/env python
"""Fast perf snapshot of the trace-mode sweep (``make bench-smoke``).

Runs the paper-style ``(impl, N, P)`` sweep that dominates figure
regeneration through :func:`repro.analysis.harness.sweep_traces`, times
it, sanity-checks the volume checksum, and writes ``BENCH_engine.json``
at the repo root so successive PRs accumulate a performance trajectory.

The ``seed`` block records the same workload measured on the pre-engine
code base (per-step Python accounting loops); ``checksum`` must never
drift — the engine vectorizes the accounting, it does not change it.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.harness import sweep_traces  # noqa: E402
from repro.engine import accounting  # noqa: E402

#: The bench-smoke workload: three paper-scale corners of the (N, P)
#: evaluation plane, four implementations each (LU + Cholesky, 2.5D +
#: 2D baseline).
CASES = [(65536, 1024), (65536, 4096), (131072, 4096)]

#: The same workload on the seed code base (per-step accounting loops),
#: measured on the container this snapshot was introduced on.  The
#: checksum (sum of mean received words over all traced runs) was
#: verified equal between the seed loops and the vectorized engine.
SEED_BASELINE = {"sweep_s": 6.43, "checksum": 1428577584.0}

REPS = 3


def run() -> dict:
    times = []
    checksum = 0.0
    for _ in range(REPS):
        t0 = time.perf_counter()
        results = sweep_traces(CASES)
        times.append(time.perf_counter() - t0)
        checksum = sum(r.mean_recv_words for r in results)
    best = min(times)
    return {
        "workload": {
            "cases": CASES,
            "lu_impls": ["conflux", "mkl"],
            "chol_impls": ["confchox", "mkl-chol"],
        },
        "engine": {
            "sweep_s": round(best, 3),
            "all_reps_s": [round(t, 3) for t in times],
            "checksum": checksum,
            "chunk_target": accounting._CHUNK_TARGET,
        },
        "seed": SEED_BASELINE,
        "speedup_vs_seed": round(SEED_BASELINE["sweep_s"] / best, 2),
        "checksum_matches_seed": abs(checksum - SEED_BASELINE["checksum"])
        / SEED_BASELINE["checksum"] < 1e-6,
        "python": platform.python_version(),
    }


def main() -> int:
    snapshot = run()
    out = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"[saved to {out}]")
    if not snapshot["checksum_matches_seed"]:
        print("ERROR: trace checksum drifted from the seed accounting",
              file=sys.stderr)
        return 1
    if snapshot["speedup_vs_seed"] < 1.0:
        print("ERROR: trace sweep slower than the seed baseline",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
