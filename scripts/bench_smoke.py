#!/usr/bin/env python
"""Fast perf snapshot of the trace-mode sweep (``make bench-smoke``).

Runs the paper-style ``(impl, N, P)`` sweep that dominates figure
regeneration through :func:`repro.analysis.harness.sweep_traces`, times
it serially *and* through the :mod:`repro.runtime` process-pool
executor, and writes ``BENCH_engine.json`` at the repo root so
successive PRs accumulate a performance trajectory.

The ``seed`` block records the same workload measured on the pre-engine
code base (per-step Python accounting loops).  The volume ``checksum``
guards the accounting semantics: ``scripts/check_bench_regression.py``
(CI's ``bench-smoke`` job, ``make bench-check``) fails when a fresh run
drifts from the *committed* snapshot, either in checksum (the
accounting changed) or in time (>25% slower).  When an accounting
change is intentional — e.g. the broadcast-root fix that charges 2D and
SUMMA broadcasts at ``g - 1`` receivers — rerun this script and commit
the refreshed ``BENCH_engine.json`` alongside the change (see
``check_bench_regression.py --update``).

The ``parallel`` block records the pool path: its checksum must equal
the serial one bit-for-bit (deterministic task ordering).  With a
single worker there is no concurrency to measure, so ``speedup`` is
recorded only when ``workers >= 2`` — a 1-worker container reports the
pool's spawn/IPC cost as ``pool_overhead_s`` instead of a misleading
sub-1x "speedup".  On a machine with >= 4 cores the sweep is expected
to run >= 1.5x faster than serial (``--parallel N`` pins the worker
count).

The ``accounting`` block records both trace evaluators over the same
workload: the closed-form evaluator (the default sweep path — cost
terms summed analytically per rank, no step log) and the chunked
reference interpreter.  Their checksums must agree exactly — the
cost-term IR's bit-for-bit contract — which
``check_bench_regression.py`` gates alongside the pool-vs-serial one.

The ``planner`` block times the auto-planner over a paper-scale grid
twice — the batched :class:`~repro.engine.accounting.TermBatch` pass
and the per-config reference loop — and records the chosen-plan
checksum of each; ``check_bench_regression.py`` gates their equality
(the batch evaluator must pick bit-identical plans).

The ``atlas`` block measures the serving layer: a small plan atlas is
cold-built into a temp dir (``build_s``), then a
:class:`~repro.planner.PlanService` over it answers ~1k synthetic
queries — a mix of exact lattice hits and off-lattice budgets that
snap to a dominated lattice point (``p50_us``/``p99_us``/``hit_rate``;
no query may fall back to live planning).  A second pass over the same
queries is pure LRU (``cached_p50_us``), which must be at least
``MIN_ATLAS_SPEEDUP``x faster than live-planning one request
(``live_plan_s``) — the "planning becomes a read-mostly lookup"
contract.  Every lattice point must also serve **bit-identical** to
live planning (``served_matches_live``), which
``check_bench_regression.py`` gates.

The ``obs`` block measures the telemetry layer itself: the trace sweep
re-runs with spans enabled (``repro.obs``), and the enabled best must
cost at most 2% over the disabled best (or the absolute noise floor)
with a **bit-identical** volume checksum — the zero-overhead-when-
disabled contract, plus proof that recording spans never perturbs the
accounting.  The planner/atlas/workload blocks also read their wall
times from the telemetry metrics registry rather than keeping their
own ``perf_counter`` bookkeeping.

The ``fabric`` block exercises the multi-host work-stealing executor
(:mod:`repro.runtime.fabric`): the same sweep runs through a
:class:`DistributedSweepExecutor` with two concurrent worker processes
leasing task batches out of a shared cache directory, then *resumes* —
a second run over the same cache must serve every task from the cache
and recompute nothing.  Gated invariants: the fabric checksum equals
the serial one bit-for-bit (distributed == pool == serial) and the
resume pass recomputes zero tasks.  The block records workers, batch
and steal counts, and both walls (the first run's wall includes two
worker-process spawns — a fixed cost that amortizes over paper-scale
grids and vanishes for long-lived external workers).

The ``workload_dag`` block exercises the joint workload planner: the
DFT chain (GEMM + two Cholesky factorizations sharing an operand + LU)
is planned jointly at two paper-scale points and executed end-to-end
through :func:`repro.api.run_workload` at a small one, serially and on
the pool.  Gated invariants: the joint plan's charged words
(factorization + cross-stage conversion) never exceed independent
per-call planning, and the pool rows — including the execution
checksum over counted traffic and dense factors — equal the serial
ones bit-for-bit.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import obs  # noqa: E402
from repro.analysis.harness import sweep_traces  # noqa: E402
from repro.engine import accounting  # noqa: E402
from repro.runtime import (  # noqa: E402
    ProcessPoolSweepExecutor,
    default_workers,
)

#: The bench-smoke workload: three paper-scale corners of the (N, P)
#: evaluation plane, four implementations each (LU + Cholesky, 2.5D +
#: 2D baseline).
CASES = [(65536, 1024), (65536, 4096), (131072, 4096)]

#: The same workload on the seed code base (per-step accounting loops),
#: measured on the container this snapshot was introduced on.  Timing
#: only: the seed checksum predates the exact accounting fixes and is
#: kept out of the comparison (the committed snapshot's checksum is the
#: reference now).
SEED_BASELINE = {"sweep_s": 6.43}

REPS = 3

#: Minimum parallel speedup expected when enough cores are available.
MIN_PARALLEL_SPEEDUP = 1.5
MIN_CORES_FOR_SPEEDUP = 4

#: The planner-grid workload: every feasible candidate of all three
#: planners at three paper-scale points (>= 100 candidates total),
#: scored once through the batched TermBatch pass and once through the
#: per-config reference loop.
PLANNER_GRID = [(4096, 64), (16384, 1024), (65536, 4096)]
PLANNER_API_COPIES = 3

#: The atlas lattice: two (N, P) corners x three ops x two budget
#: rungs; small enough to cold-build in well under a second.
ATLAS_POINTS = [(4096, 64), (8192, 256)]
ATLAS_OPS = ("lu", "cholesky", "gemm")
ATLAS_QUERIES = 1000

#: The workload block: the DFT chain (gemm + 2x cholesky sharing an
#: operand + lu) jointly planned at two paper-scale points, plus one
#: small point executed end-to-end through run_workload.
WORKLOAD_POINTS = [(16384, 1024), (65536, 1024)]
WORKLOAD_EXEC = (64, 4)

#: Minimum cached-lookup speedup over live planning of one request.
MIN_ATLAS_SPEEDUP = 100.0

#: Telemetry overhead gate: spans enabled may cost at most 2% over
#: disabled — or this absolute floor, whichever is larger (2% of a
#: tens-of-milliseconds sweep is below timer noise; same pattern as
#: the checker's NOISE_FLOOR_S).
OBS_MAX_OVERHEAD = 1.02
OBS_NOISE_FLOOR_S = 0.05


def calibrate() -> float:
    """Machine-speed probe: a fixed NumPy workload shaped like the
    accounting hot path (broadcasted float arithmetic over
    (steps, ranks)-sized scratch).

    The regression checker divides sweep times by this, so the
    committed baseline transfers across machines (a CI runner is
    slower than a dev box in the same proportion on both numbers).
    """
    import numpy as np

    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        t = np.arange(4096, dtype=np.float64)[:, None]
        p = np.arange(512, dtype=np.float64)
        acc = np.zeros((4096, 512))
        for _ in range(8):
            acc += (t * 3.0 + 1.0) * (p % 7.0) / (t + p + 1.0)
        float(acc.sum())
        best = min(best, time.perf_counter() - t0)
    return best


def _checksum(results) -> float:
    return sum(r.mean_recv_words for r in results)


def _plan_grid(batched: bool) -> tuple[float, int, float]:
    """Run all three planners over ``PLANNER_GRID``; returns
    ``(wall_s, candidates, chosen_checksum)``."""
    from repro.analysis.harness import NODE_MEM_WORDS
    from repro.planner import plan_cholesky, plan_gemm, plan_lu

    # Wall time comes from the planner's own telemetry — the
    # `planner.plan_batch.wall_s` histogram covers both the batched
    # pass and the per-config reference loop (plan_batch is the single
    # pipeline), so this measures exactly the planning work.
    hist = obs.metrics().histogram("planner.plan_batch.wall_s")
    before = hist.total
    plans = []
    for n, p in PLANNER_GRID:
        for planner in (plan_lu, plan_cholesky, plan_gemm):
            plans.append(planner(n, p, NODE_MEM_WORDS,
                                 api_copies=PLANNER_API_COPIES,
                                 batched=batched))
    wall = hist.total - before
    cands = sum(len(plan.ranked) for plan in plans)
    checksum = sum(plan.chosen.predicted_words for plan in plans)
    return wall, cands, checksum


def _atlas_block() -> dict:
    """Cold-build a small atlas, then measure serving latency under
    synthetic query traffic (mixed exact / off-lattice-snapped)."""
    import dataclasses
    import tempfile

    import numpy as np

    from repro.analysis.harness import NODE_MEM_WORDS
    from repro.planner import PlanAtlas, PlanRequest, PlanService, \
        plan_request

    mems = [NODE_MEM_WORDS, NODE_MEM_WORDS / 4]
    lattice = [PlanRequest(op, n, p, mem, api_copies=PLANNER_API_COPIES)
               for n, p in ATLAS_POINTS for mem in mems for op in ATLAS_OPS]
    # Synthetic traffic: cycle the lattice; every fifth query asks an
    # off-lattice budget between the two rungs, which must snap to the
    # smaller rung's plan (never fall back to live planning).
    queries = []
    for i in range(ATLAS_QUERIES):
        base = lattice[i % len(lattice)]
        if i % 5 == 4:
            base = dataclasses.replace(base, mem_words=NODE_MEM_WORDS / 2)
        queries.append(base)

    with tempfile.TemporaryDirectory() as tmp:
        atlas = PlanAtlas(tmp)
        build = atlas.build(lattice)
        # The build's own telemetry gauge — set by PlanAtlas.build —
        # is the measurement of record (it equals build.wall_s).
        build_s = obs.metrics().gauge("atlas.build.wall_s").value

        # The correctness contract: every lattice point served from the
        # atlas is bit-identical to the live planner's output.
        check = PlanService(atlas=atlas)
        matches = all(check.plan(req) == plan_request(req)
                      for req in lattice)

        service = PlanService(atlas=atlas)
        lat_us = np.empty(len(queries))
        for i, req in enumerate(queries):
            t0 = time.perf_counter()
            service.plan(req)
            lat_us[i] = (time.perf_counter() - t0) * 1e6
        hit_rate = service.stats.hit_rate
        live_fallbacks = service.stats.live_plans

        # Second pass: every query repeats, so every lookup is an LRU
        # hit — the steady-state serving latency.
        cached_us = np.empty(len(queries))
        for i, req in enumerate(queries):
            t0 = time.perf_counter()
            service.plan(req)
            cached_us[i] = (time.perf_counter() - t0) * 1e6

    live_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        plan_request(lattice[0])
        live_s = min(live_s, time.perf_counter() - t0)

    cached_p50_us = float(np.percentile(cached_us, 50))
    return {
        "lattice_points": len(lattice),
        "build_s": round(build_s, 3),
        "built": build.built,
        "queries": len(queries),
        "p50_us": round(float(np.percentile(lat_us, 50)), 1),
        "p99_us": round(float(np.percentile(lat_us, 99)), 1),
        "cached_p50_us": round(cached_p50_us, 1),
        "hit_rate": round(hit_rate, 4),
        "live_fallbacks": live_fallbacks,
        "live_plan_s": round(live_s, 4),
        "speedup_vs_live": round(live_s * 1e6 / cached_p50_us, 1),
        "served_matches_live": matches,
    }


def _workload_block(workers: int) -> dict:
    """Jointly plan the DFT workload chain at paper scale and execute
    it at a small scale, serially and through the process pool; the
    pool's row set must equal the serial one bit-for-bit and the joint
    charge may never exceed independent per-call planning."""
    from repro.analysis.harness import NODE_MEM_WORDS
    from repro.runtime.executor import SerialExecutor, SweepTask

    tasks = [SweepTask("workload", "dft", n, p,
                       extra=(("mem_words", NODE_MEM_WORDS),))
             for n, p in WORKLOAD_POINTS]
    tasks.append(SweepTask("workload", "dft", *WORKLOAD_EXEC,
                           extra=(("execute", True),)))
    # Executor walls come from the runtime's own telemetry gauge,
    # which every SerialExecutor.run (pool included) sets.
    run_gauge = obs.metrics().gauge("runtime.executor.last_run_s")
    serial = SerialExecutor().run(tasks)
    serial_s = run_gauge.value
    pooled = ProcessPoolSweepExecutor(max_workers=workers).run(tasks)
    pool_s = run_gauge.value

    def _sum(rows) -> float:
        return sum(row["joint_words"] + row["independent_words"]
                   + row.get("exec_checksum", 0.0) for row in rows)

    exec_row = serial[-1]
    return {
        "points": WORKLOAD_POINTS,
        "exec_point": list(WORKLOAD_EXEC),
        "plan_s": round(serial_s, 3),
        "pool_s": round(pool_s, 3),
        "joint_words": sum(row["joint_words"] for row in serial),
        "independent_words": sum(row["independent_words"]
                                 for row in serial),
        "joint_le_independent": all(
            row["joint_words"] <= row["independent_words"]
            for row in serial),
        "exec_checksum": exec_row["exec_checksum"],
        "exec_reused": exec_row["reused"],
        "checksum": _sum(serial),
        "pool_checksum": _sum(pooled),
        "checksum_matches_pool": pooled == serial,
    }


def _fabric_block(serial_checksum: float) -> dict:
    """The work-stealing fabric over the bench matrix: two worker
    subprocesses sharing one cache directory, coordinator reconcile,
    then a resume pass that must recompute nothing."""
    import tempfile

    from repro.runtime import ResultCache
    from repro.runtime.fabric import DistributedSweepExecutor

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        ex = DistributedSweepExecutor(cache, workers=2,
                                      participate=False,
                                      batch_size=1, ttl_s=20.0,
                                      timeout_s=300.0)
        t0 = time.perf_counter()
        results = sweep_traces(CASES, executor=ex)
        wall = time.perf_counter() - t0
        checksum = _checksum(results)
        report = ex.last_report

        resume = DistributedSweepExecutor(cache, workers=0,
                                          batch_size=1, ttl_s=20.0,
                                          timeout_s=300.0)
        hits_before = cache.hits
        retried = obs.metrics().counter("fabric.tasks.retried")
        retried_before = retried.value
        t0 = time.perf_counter()
        resumed = sweep_traces(CASES, executor=resume)
        resume_wall = time.perf_counter() - t0
        resume_recomputed = retried.value - retried_before
    return {
        "workers": report.workers,
        "batches": report.batches,
        "stolen": report.stolen,
        "by_worker": report.by_worker,
        "sweep_s": round(wall, 3),
        "tasks_computed": report.tasks_computed,
        "checksum": checksum,
        "checksum_matches_serial": checksum == serial_checksum,
        "resume_s": round(resume_wall, 3),
        "resume_cache_hits": cache.hits - hits_before,
        "resume_recomputed": resume_recomputed,
        "resume_checksum_matches": _checksum(resumed) == serial_checksum,
    }


def _obs_block(disabled_s: float, checksum: float) -> dict:
    """Measure the telemetry layer's own cost: the same sweep with
    spans enabled, best-of-REPS against the disabled best.

    Gated invariants: the enabled sweep costs <= 2% over disabled (or
    the absolute noise floor — 2% of a tens-of-milliseconds sweep is
    below timer resolution) and the volume checksum is bit-identical
    (recording spans must not perturb the accounting)."""
    times = []
    enabled_checksum = 0.0
    obs.enable()
    try:
        for _ in range(REPS):
            t0 = time.perf_counter()
            results = sweep_traces(CASES)
            times.append(time.perf_counter() - t0)
            enabled_checksum = _checksum(results)
        span_cats = sorted({s.cat for s in obs.spans()})
        span_count = len(obs.spans())
    finally:
        obs.disable()
    enabled_s = min(times)
    overhead_s = enabled_s - disabled_s
    return {
        "disabled_s": round(disabled_s, 3),
        "enabled_s": round(enabled_s, 3),
        "overhead_s": round(overhead_s, 3),
        "spans": span_count,
        "span_cats": span_cats,
        "checksum": enabled_checksum,
        "checksum_matches_disabled": enabled_checksum == checksum,
        "overhead_ok": (enabled_s <= disabled_s * OBS_MAX_OVERHEAD
                        or overhead_s <= OBS_NOISE_FLOOR_S),
    }


def run(parallel: int | None = None) -> dict:
    """One full snapshot; ``parallel`` pins the pool's worker count."""
    times = []
    checksum = 0.0
    for _ in range(REPS):
        t0 = time.perf_counter()
        results = sweep_traces(CASES)
        times.append(time.perf_counter() - t0)
        checksum = _checksum(results)
    best = min(times)

    # The reference chunked interpreter over the same workload: its
    # checksum must equal the closed-form one exactly (best of 2 — it
    # is the slow path and only its checksum is gated).
    chunked_times = []
    chunked_checksum = 0.0
    for _ in range(2):
        t0 = time.perf_counter()
        chunked_results = sweep_traces(CASES, evaluator="chunked")
        chunked_times.append(time.perf_counter() - t0)
        chunked_checksum = _checksum(chunked_results)

    cpus = default_workers()
    workers = (parallel if parallel is not None
               else min(MIN_CORES_FOR_SPEEDUP, cpus))
    # Symmetric with the serial measurement: best of REPS pool runs, so
    # one noisy spawn cannot fail the speedup gate.  Each rep closes
    # its executor, so every cold run pays the full pool spawn.
    par_times = []
    par_checksum = 0.0
    for _ in range(REPS):
        with ProcessPoolSweepExecutor(max_workers=workers) as cold:
            t0 = time.perf_counter()
            par_results = sweep_traces(CASES, executor=cold)
            par_times.append(time.perf_counter() - t0)
            par_checksum = _checksum(par_results)
    par_s = min(par_times)

    # The persistent-pool path: one executor, its (lazily created) pool
    # reused across runs — repeated small sweeps stop paying the spawn
    # overhead after the first call.
    warm_times = []
    warm_checksum = 0.0
    with ProcessPoolSweepExecutor(max_workers=workers) as warm_ex:
        sweep_traces(CASES, executor=warm_ex)          # spawn + warm
        for _ in range(REPS):
            t0 = time.perf_counter()
            warm_results = sweep_traces(CASES, executor=warm_ex)
            warm_times.append(time.perf_counter() - t0)
            warm_checksum = _checksum(warm_results)
    warm_s = min(warm_times)

    # The planner grid: batched TermBatch scoring vs the per-config
    # reference loop (best of 2 each; the chosen-plan checksums must
    # match bit-for-bit).
    loop_s, loop_cands, loop_checksum = min(
        (_plan_grid(batched=False) for _ in range(2)),
        key=lambda r: r[0])
    bat_s, bat_cands, bat_checksum = min(
        (_plan_grid(batched=True) for _ in range(2)),
        key=lambda r: r[0])

    return {
        "workload": {
            "cases": CASES,
            "lu_impls": ["conflux", "mkl"],
            "chol_impls": ["confchox", "mkl-chol"],
        },
        "engine": {
            "sweep_s": round(best, 3),
            "all_reps_s": [round(t, 3) for t in times],
            "calib_s": round(calibrate(), 4),
            "checksum": checksum,
            "chunk_target": accounting._CHUNK_TARGET,
        },
        "accounting": {
            "mode": "closed",
            "closed": {"sweep_s": round(best, 3), "checksum": checksum},
            "chunked": {"sweep_s": round(min(chunked_times), 3),
                        "checksum": chunked_checksum},
            "checksum_matches": chunked_checksum == checksum,
        },
        "parallel": {
            "workers": workers,
            "cpus": cpus,
            "sweep_s": round(par_s, 3),
            "all_reps_s": [round(t, 3) for t in par_times],
            # With one worker the pool measures spawn/IPC cost, not
            # concurrency: report the overhead and omit the speedup.
            "speedup": (round(best / par_s, 2) if workers >= 2
                        else None),
            "pool_overhead_s": round(max(0.0, par_s - best), 3),
            # The persistent pool: the same sweep on an already-warm
            # executor, and what reuse saves vs a cold spawn per call.
            "warm_sweep_s": round(warm_s, 3),
            "pool_reuse_saving_s": round(max(0.0, par_s - warm_s), 3),
            "warm_checksum_matches_serial": warm_checksum == checksum,
            "checksum": par_checksum,
            "checksum_matches_serial": par_checksum == checksum,
        },
        "planner": {
            "grid": PLANNER_GRID,
            "api_copies": PLANNER_API_COPIES,
            "candidates": bat_cands,
            "batched_s": round(bat_s, 3),
            "per_config_s": round(loop_s, 3),
            "speedup": round(loop_s / bat_s, 1),
            "chosen_checksum": bat_checksum,
            "per_config_checksum": loop_checksum,
            "chosen_matches": (bat_checksum == loop_checksum
                               and bat_cands == loop_cands),
        },
        "obs": _obs_block(best, checksum),
        "atlas": _atlas_block(),
        "fabric": _fabric_block(checksum),
        "workload_dag": _workload_block(workers),
        "seed": SEED_BASELINE,
        "speedup_vs_seed": round(SEED_BASELINE["sweep_s"] / best, 2),
        "python": platform.python_version(),
    }


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"worker count must be positive, got {value}")
    return value


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--parallel", type=_positive_int, default=None, metavar="N",
        help="worker count for the pool path (default: min(4, cores); "
             "Makefile pass-through: make bench-smoke PARALLEL=N)")
    args = parser.parse_args(argv)
    snapshot = run(parallel=args.parallel)
    out = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"[saved to {out}]")
    failures = []
    if snapshot["speedup_vs_seed"] < 1.0:
        failures.append("trace sweep slower than the seed baseline")
    acct = snapshot["accounting"]
    if not acct["checksum_matches"]:
        failures.append(
            f"closed-form checksum {acct['closed']['checksum']} != "
            f"chunked {acct['chunked']['checksum']} — the evaluators "
            "diverged")
    par = snapshot["parallel"]
    if not par["checksum_matches_serial"]:
        failures.append(
            f"parallel checksum {par['checksum']} != serial "
            f"{snapshot['engine']['checksum']}")
    # Gate the speedup only when both the machine and the pinned pool
    # are wide enough to expect one (PARALLEL=1 on a 16-core box is a
    # request, not a regression; a 1-worker pool records no speedup at
    # all, only its overhead).
    if (par["speedup"] is not None
            and par["cpus"] >= MIN_CORES_FOR_SPEEDUP
            and par["workers"] >= MIN_CORES_FOR_SPEEDUP
            and par["speedup"] < MIN_PARALLEL_SPEEDUP):
        failures.append(
            f"parallel speedup {par['speedup']} < {MIN_PARALLEL_SPEEDUP} "
            f"with {par['workers']} workers on {par['cpus']} cores")
    planner = snapshot["planner"]
    if not planner["chosen_matches"]:
        failures.append(
            f"planner batched checksum {planner['chosen_checksum']} != "
            f"per-config {planner['per_config_checksum']} — the batch "
            "evaluator changed plan selection")
    atlas = snapshot["atlas"]
    if not atlas["served_matches_live"]:
        failures.append(
            "atlas-served plans differ from live planning on lattice "
            "points — the bit-identical serving contract broke")
    if atlas["live_fallbacks"]:
        failures.append(
            f"{atlas['live_fallbacks']} atlas queries fell back to live "
            "planning — lattice coverage or snapping regressed")
    if atlas["speedup_vs_live"] < MIN_ATLAS_SPEEDUP:
        failures.append(
            f"cached plan lookup only {atlas['speedup_vs_live']}x faster "
            f"than live planning (< {MIN_ATLAS_SPEEDUP:g}x) — the LRU "
            "serving path regressed")
    ob = snapshot["obs"]
    if not ob["overhead_ok"]:
        failures.append(
            f"telemetry-enabled sweep {ob['enabled_s']}s vs disabled "
            f"{ob['disabled_s']}s — overhead {ob['overhead_s']}s exceeds "
            f"both the 2% budget and the {OBS_NOISE_FLOOR_S}s noise "
            "floor")
    if not ob["checksum_matches_disabled"]:
        failures.append(
            f"telemetry-enabled checksum {ob['checksum']} != disabled "
            f"{snapshot['engine']['checksum']} — recording spans "
            "perturbed the accounting")
    fab = snapshot["fabric"]
    if not fab["checksum_matches_serial"]:
        failures.append(
            f"fabric checksum {fab['checksum']} != serial "
            f"{snapshot['engine']['checksum']} — the distributed "
            "executor changed the sweep semantics")
    if fab["resume_recomputed"]:
        failures.append(
            f"fabric resume recomputed {fab['resume_recomputed']} tasks "
            "— already-cached results were not served")
    if not fab["resume_checksum_matches"]:
        failures.append(
            "fabric resume checksum diverged from serial — resumed "
            "results differ from computed ones")
    wdag = snapshot["workload_dag"]
    if not wdag["joint_le_independent"]:
        failures.append(
            f"joint workload plan charges {wdag['joint_words']} words > "
            f"independent per-call planning {wdag['independent_words']} — "
            "the joint search lost its never-worse guarantee")
    if not wdag["checksum_matches_pool"]:
        failures.append(
            f"workload pool checksum {wdag['pool_checksum']} != serial "
            f"{wdag['checksum']} — workload execution is not "
            "deterministic across executors")
    for f in failures:
        print(f"ERROR: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
