#!/usr/bin/env python
"""Fast perf snapshot of the trace-mode sweep (``make bench-smoke``).

Runs the paper-style ``(impl, N, P)`` sweep that dominates figure
regeneration through :func:`repro.analysis.harness.sweep_traces`, times
it, and writes ``BENCH_engine.json`` at the repo root so successive PRs
accumulate a performance trajectory.

The ``seed`` block records the same workload measured on the pre-engine
code base (per-step Python accounting loops).  The volume ``checksum``
guards the accounting semantics: ``scripts/check_bench_regression.py``
(CI's ``bench-smoke`` job, ``make bench-check``) fails when a fresh run
drifts from the *committed* snapshot, either in checksum (the
accounting changed) or in time (>25% slower).  When an accounting
change is intentional — e.g. the exact tournament participant counting
that replaced the rounds-at-every-rank idealization — rerun this
script and commit the refreshed ``BENCH_engine.json`` alongside the
change (see ``check_bench_regression.py --update``).
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.harness import sweep_traces  # noqa: E402
from repro.engine import accounting  # noqa: E402

#: The bench-smoke workload: three paper-scale corners of the (N, P)
#: evaluation plane, four implementations each (LU + Cholesky, 2.5D +
#: 2D baseline).
CASES = [(65536, 1024), (65536, 4096), (131072, 4096)]

#: The same workload on the seed code base (per-step accounting loops),
#: measured on the container this snapshot was introduced on.  Timing
#: only: the seed checksum predates the exact tournament accounting and
#: is kept out of the comparison (the committed snapshot's checksum is
#: the reference now).
SEED_BASELINE = {"sweep_s": 6.43}

REPS = 3


def calibrate() -> float:
    """Machine-speed probe: a fixed NumPy workload shaped like the
    accounting hot path (broadcasted float arithmetic over
    (steps, ranks)-sized scratch).

    The regression checker divides sweep times by this, so the
    committed baseline transfers across machines (a CI runner is
    slower than a dev box in the same proportion on both numbers).
    """
    import numpy as np

    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        t = np.arange(4096, dtype=np.float64)[:, None]
        p = np.arange(512, dtype=np.float64)
        acc = np.zeros((4096, 512))
        for _ in range(8):
            acc += (t * 3.0 + 1.0) * (p % 7.0) / (t + p + 1.0)
        float(acc.sum())
        best = min(best, time.perf_counter() - t0)
    return best


def run() -> dict:
    times = []
    checksum = 0.0
    for _ in range(REPS):
        t0 = time.perf_counter()
        results = sweep_traces(CASES)
        times.append(time.perf_counter() - t0)
        checksum = sum(r.mean_recv_words for r in results)
    best = min(times)
    return {
        "workload": {
            "cases": CASES,
            "lu_impls": ["conflux", "mkl"],
            "chol_impls": ["confchox", "mkl-chol"],
        },
        "engine": {
            "sweep_s": round(best, 3),
            "all_reps_s": [round(t, 3) for t in times],
            "calib_s": round(calibrate(), 4),
            "checksum": checksum,
            "chunk_target": accounting._CHUNK_TARGET,
        },
        "seed": SEED_BASELINE,
        "speedup_vs_seed": round(SEED_BASELINE["sweep_s"] / best, 2),
        "python": platform.python_version(),
    }


def main() -> int:
    snapshot = run()
    out = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"
    out.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"[saved to {out}]")
    if snapshot["speedup_vs_seed"] < 1.0:
        print("ERROR: trace sweep slower than the seed baseline",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
