#!/usr/bin/env python
"""Gate the trace-sweep performance against the committed baseline.

Runs the ``bench_smoke`` workload fresh and compares it against the
committed ``BENCH_engine.json``:

* **checksum** — the sweep's total mean-received-words must equal the
  committed value exactly (relative 1e-9): a drift means the accounting
  *semantics* changed, which must never happen silently;
* **time** — the fresh best-of-``REPS`` sweep must not be more than
  ``MAX_SLOWDOWN`` (25%) slower than the committed ``sweep_s``, after
  normalizing both by the machine-speed calibration probe
  (``bench_smoke.calibrate``) recorded alongside each snapshot — so the
  committed baseline transfers between the dev container and the CI
  runner: a uniformly slower machine slows sweep and probe in the same
  proportion, while a code regression slows only the sweep.  A relative
  slowdown within ``NOISE_FLOOR_S`` absolute seconds is ignored — the
  closed-form sweep is sub-second, so ratio noise alone must not fail
  the gate;
* **evaluator equality** — the closed-form trace evaluator's checksum
  must equal the chunked reference interpreter's *exactly* (the
  cost-term IR's bit-for-bit contract), alongside the existing
  pool-vs-serial equality gate;
* **planner parity** — the batched ``TermBatch`` planner pass must pick
  plans with a chosen-plan checksum *exactly* equal to the per-config
  reference loop's;
* **atlas serving parity** — every plan the atlas/service layer serves
  for a lattice point must be bit-identical to the live planner's
  output for the same request (``served_matches_live``);
* **telemetry cost** — re-running the sweep with ``repro.obs`` spans
  enabled may cost at most 2% over the disabled run (or an absolute
  noise floor) and must produce a bit-identical volume checksum
  (``overhead_ok`` / ``checksum_matches_disabled``);
* **fabric parity** — the work-stealing distributed executor
  (``repro.runtime.fabric``, >= 2 worker processes leasing batches out
  of a shared cache directory) must reproduce the serial checksum
  bit-for-bit (``checksum_matches_serial``) and a resumed run over the
  same cache must recompute nothing (``resume_recomputed == 0``) while
  still matching the checksum — distributed == pool == serial, the
  PR-4 contract extended across hosts;
* **workload-DAG invariants** — the joint workload plan may never
  charge more counted words than independent per-call planning
  (``joint_le_independent``), the serial and process-pool workload
  sweeps — including the small-scale ``run_workload`` execution
  checksum — must agree bit-for-bit, and the execution checksum must
  equal the committed one (workload execution semantics changed).

Used by CI's ``bench-smoke`` job and ``make bench-check``.

Updating the baseline intentionally
-----------------------------------
When an accounting change is deliberate (it alters trace volumes) or a
perf trade-off is accepted, refresh the snapshot and commit it together
with the code change::

    python scripts/check_bench_regression.py --update
    git add BENCH_engine.json

(equivalently ``make bench-smoke``).  The commit message should say why
the checksum or timing moved.  Note the committed ``sweep_s`` is
machine-relative: refresh it too if the CI runner class changes.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from bench_smoke import _positive_int, run  # noqa: E402

BASELINE = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"

#: Maximum tolerated slowdown of the fresh sweep vs the committed one.
MAX_SLOWDOWN = 1.25

#: Absolute wall-clock slack (seconds) under which a relative slowdown
#: is indistinguishable from timer/scheduler noise.  The closed-form
#: sweep runs in well under a second, the same magnitude as the
#: calibration probe itself, so the relative gate alone would flake; a
#: real regression on that path (e.g. reintroducing (steps x P) work)
#: costs whole seconds and still trips the gate.
NOISE_FLOOR_S = 0.25

#: Relative tolerance for checksum equality (pure float-summation
#: noise; any semantic change moves the checksum far more).
CHECKSUM_RTOL = 1e-9


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="rewrite BENCH_engine.json from a fresh run "
                             "instead of gating against it")
    parser.add_argument("--parallel", type=_positive_int, default=None,
                        metavar="N",
                        help="worker count for the pool path (Makefile "
                             "pass-through: make bench-check PARALLEL=N)")
    args = parser.parse_args(argv)

    fresh = run(parallel=args.parallel)
    if args.update:
        BASELINE.write_text(json.dumps(fresh, indent=2) + "\n")
        print(f"[baseline updated: {BASELINE}]")
        return 0

    baseline = json.loads(BASELINE.read_text())
    base_engine = baseline["engine"]
    fresh_engine = fresh["engine"]
    # Normalize by the machine-speed probe when both snapshots carry
    # one (older baselines fall back to raw wall clock).
    base_calib = base_engine.get("calib_s")
    fresh_calib = fresh_engine.get("calib_s")
    normalize = base_calib and fresh_calib
    base_t = base_engine["sweep_s"] / (base_calib if normalize else 1.0)
    fresh_t = fresh_engine["sweep_s"] / (fresh_calib if normalize else 1.0)
    unit = "sweep/calib" if normalize else "s"
    print(f"baseline: sweep_s={base_engine['sweep_s']} "
          f"calib_s={base_calib} checksum={base_engine['checksum']}")
    print(f"fresh:    sweep_s={fresh_engine['sweep_s']} "
          f"calib_s={fresh_calib} checksum={fresh_engine['checksum']}")

    failures = []
    base_sum, fresh_sum = base_engine["checksum"], fresh_engine["checksum"]
    if abs(fresh_sum - base_sum) > CHECKSUM_RTOL * abs(base_sum):
        failures.append(
            f"checksum drifted: {fresh_sum} vs committed {base_sum} — the "
            "accounting semantics changed; if intentional, rerun with "
            "--update and commit BENCH_engine.json")
    raw_excess = fresh_engine["sweep_s"] - base_engine["sweep_s"]
    if fresh_t > MAX_SLOWDOWN * base_t and raw_excess > NOISE_FLOOR_S:
        failures.append(
            f"sweep slowed: {fresh_t:.2f} vs committed {base_t:.2f} "
            f"{unit} (> {MAX_SLOWDOWN:.0%}, "
            f"+{raw_excess:.2f}s absolute)")
    # The pool path must reproduce the serial accounting exactly
    # (deterministic task ordering makes the checksum bit-identical).
    par = fresh.get("parallel")
    if par and not par.get("checksum_matches_serial", True):
        failures.append(
            f"process-pool checksum {par['checksum']} != serial "
            f"{fresh_sum} — the parallel executor changed the sweep "
            "semantics")
    # The closed-form evaluator must reproduce the chunked reference
    # interpreter exactly (the cost-term IR's bit-for-bit contract).
    acct = fresh.get("accounting")
    if acct and acct["chunked"]["checksum"] != acct["closed"]["checksum"]:
        failures.append(
            f"closed-form checksum {acct['closed']['checksum']} != "
            f"chunked {acct['chunked']['checksum']} — the two trace "
            "evaluators diverged")
    # The batched planner must pick bit-identical plans to the
    # per-config reference loop (the TermBatch parity contract).
    planner = fresh.get("planner")
    if planner and not planner["chosen_matches"]:
        failures.append(
            f"planner batched checksum {planner['chosen_checksum']} != "
            f"per-config {planner['per_config_checksum']} — the batch "
            "evaluator changed plan selection")
    # Plans served from the atlas (and through the service's caches)
    # must be bit-identical to live planning of the same request.
    atlas = fresh.get("atlas")
    if atlas and not atlas["served_matches_live"]:
        failures.append(
            "atlas-served plans differ from live planning on lattice "
            "points — the bit-identical serving contract broke")
    # Telemetry must be free when disabled and inert when enabled:
    # <= 2% sweep overhead (or the noise floor) and a bit-identical
    # volume checksum with spans on.
    ob = fresh.get("obs")
    if ob:
        if not ob["overhead_ok"]:
            failures.append(
                f"telemetry-enabled sweep {ob['enabled_s']}s vs disabled "
                f"{ob['disabled_s']}s — span overhead "
                f"{ob['overhead_s']}s exceeds the 2% budget and the "
                "noise floor")
        if not ob["checksum_matches_disabled"]:
            failures.append(
                f"telemetry-enabled checksum {ob['checksum']} != "
                f"disabled {fresh_sum} — recording spans perturbed the "
                "accounting")
    # The work-stealing fabric must reproduce the serial checksum
    # bit-for-bit and resume from the shared cache without recomputing.
    fab = fresh.get("fabric")
    if fab:
        if not fab["checksum_matches_serial"]:
            failures.append(
                f"fabric checksum {fab['checksum']} != serial "
                f"{fresh_sum} — the distributed executor changed the "
                "sweep semantics")
        if fab.get("resume_recomputed"):
            failures.append(
                f"fabric resume recomputed {fab['resume_recomputed']} "
                "tasks — already-cached results were not served")
        if not fab.get("resume_checksum_matches", True):
            failures.append(
                "fabric resume checksum diverged from serial — resumed "
                "results differ from computed ones")
    # The joint workload planner must never charge more than
    # independent per-call planning, the pool must reproduce the
    # serial workload sweep (plans *and* execution checksum) exactly,
    # and the execution checksum must match the committed snapshot.
    wdag = fresh.get("workload_dag")
    if wdag:
        if not wdag["joint_le_independent"]:
            failures.append(
                f"joint workload plan charges {wdag['joint_words']} "
                f"words > independent {wdag['independent_words']} — the "
                "joint search lost its never-worse guarantee")
        if not wdag["checksum_matches_pool"]:
            failures.append(
                f"workload pool checksum {wdag['pool_checksum']} != "
                f"serial {wdag['checksum']} — workload execution is not "
                "deterministic across executors")
        base_wdag = baseline.get("workload_dag")
        if base_wdag:
            base_exec = base_wdag["exec_checksum"]
            if (abs(wdag["exec_checksum"] - base_exec)
                    > CHECKSUM_RTOL * abs(base_exec)):
                failures.append(
                    f"workload execution checksum drifted: "
                    f"{wdag['exec_checksum']} vs committed {base_exec} — "
                    "run_workload semantics changed; if intentional, "
                    "rerun with --update and commit BENCH_engine.json")
    for f in failures:
        print(f"ERROR: {f}", file=sys.stderr)
    if not failures:
        print("bench regression check OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
