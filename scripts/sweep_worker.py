#!/usr/bin/env python
"""Join a fabric sweep as a worker (thin wrapper over
``python -m repro.runtime.fabric``).

Point any number of these — on one host or many sharing a filesystem —
at the coordinator's cache directory and they work-steal leased task
batches until the sweep completes::

    # host A (or terminal 1)
    python scripts/sweep_worker.py --cache /shared/sweep-cache

    # host B (or terminal 2)
    python scripts/sweep_worker.py --cache /shared/sweep-cache

Workers write results through the content-addressed
:class:`~repro.runtime.cache.ResultCache`, heartbeat their leases, and
steal batches whose owner's heartbeat expired, so a crashed worker
costs at most one batch's unfinished tail.  See
``src/repro/runtime/fabric.py`` and the ARCHITECTURE.md "Sweep fabric"
section for the protocol.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.runtime.fabric import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
