#!/usr/bin/env python
"""Garbage-collect a sweep/atlas cache directory (``make cache-gc``).

Since PR 9 every entry's filename carries its code fingerprint
(``{digest}.{fp16}.pkl``), so entries written by an edited code base
are stale *forever* — no lookup from the current tree can ever serve
them.  This prunes those, plus orphaned ``*.tmp`` files from killed
writers, and (with ``--max-age-s``) current-fingerprint entries older
than a retention window.  Pruning is always safe: a pruned entry reads
as a cold miss and recomputes.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro import obs  # noqa: E402
from repro.runtime import ResultCache  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache", required=True, metavar="DIR",
                        help="cache directory to sweep")
    parser.add_argument("--max-age-s", type=float, default=None,
                        metavar="S",
                        help="also prune current-fingerprint entries "
                             "older than this (default: stale-only)")
    args = parser.parse_args(argv)

    cache = ResultCache(args.cache)
    before = len(cache)
    pruned = cache.gc(max_age_s=args.max_age_s)
    snapshot = obs.metrics().snapshot()
    print(f"cache {args.cache}: {before} entries, pruned {pruned} "
          f"(registry cache.gc_pruned={snapshot.get('cache.gc_pruned')}), "
          f"{len(cache)} remain")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
