"""Figure 1: COnfLUX speedup over the fastest competing library, and its
achieved % of peak, over the (nodes x matrix size) grid.

Expected shape (paper): speedup >= 1 in almost all cells, largest (up to
~3x) in the small-N / small-P corner where SLATE is second-best; cells
where the input does not fit are greyed; cells where everything is below
3% of peak are discarded.
"""

import pytest

from repro.analysis import fig1_lu_heatmap, format_table

N_SWEEP = (4096, 16384, 65536)
P_SWEEP = (4, 16, 64, 256, 1024)


@pytest.mark.benchmark(group="fig1-11")
def test_fig1_lu_heatmap(benchmark, save_result):
    cells = benchmark.pedantic(
        fig1_lu_heatmap, kwargs=dict(n_sweep=N_SWEEP, p_sweep=P_SWEEP),
        iterations=1, rounds=1)
    rows = []
    for c in cells:
        if c["status"] == "ok":
            rows.append([c["n"], c["nranks"], f"{c['speedup']:.2f}x",
                         c["second_best"], f"{c['our_peak_pct']:.1f}%"])
        else:
            rows.append([c["n"], c["nranks"], c["status"], "-", "-"])
    table = format_table(
        ["N", "ranks", "speedup", "second-best", "COnfLUX % peak"], rows,
        title="Figure 1: COnfLUX speedup vs fastest state-of-the-art")
    save_result("fig1_lu_heatmap", table)

    ok = [c for c in cells if c["status"] == "ok"]
    assert ok, "at least some feasible cells"
    # COnfLUX wins in almost all scenarios (allow a couple of ties).
    wins = sum(1 for c in ok if c["speedup"] >= 0.99)
    assert wins >= 0.85 * len(ok)
    # Somewhere the speedup is substantial (paper: up to 3x).
    assert max(c["speedup"] for c in ok) > 1.3
