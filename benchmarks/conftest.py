"""Shared helpers for the figure/table regeneration benchmarks.

Every benchmark regenerates one table or figure of the paper at a sweep
size that completes in seconds, prints the rows/series, and writes them
to ``benchmarks/results/<name>.txt`` so the artifacts survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Write (and echo) a named benchmark artifact."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
