"""Figure 8c: communication reduction of COnfLUX vs the second-best
implementation, measured (machine-scale traces) and predicted (validated
models, exascale).

Expected shape (paper): reduction > 1 everywhere, up to ~1.4x measured at
P = 1024, approaching ~2.1x for a full-Summit-scale prediction
(P = 262,144); second-best flips from SLATE/MKL to CANDMC at large P.
"""

import pytest

from repro.analysis import fig8c_comm_reduction, format_table


@pytest.mark.benchmark(group="fig8")
def test_fig8c_comm_reduction(benchmark, save_result):
    rows = benchmark.pedantic(
        fig8c_comm_reduction,
        kwargs=dict(p_sweep=(16, 64, 256, 1024), n_sweep=(4096, 16384),
                    predicted_cells=((16384, 4096), (32768, 32768),
                                     (131072, 262144))),
        iterations=1, rounds=1)
    table = format_table(
        ["N", "ranks", "kind", "second-best", "reduction"],
        [[r["n"], r["nranks"], r["kind"], r["second_best"], r["reduction"]]
         for r in rows],
        title="Figure 8c: COnfLUX communication reduction vs second-best",
        floatfmt="{:.2f}")
    save_result("fig8c_comm_reduction", table)

    # P <= 16 cells are near-ties (see EXPERIMENTS.md); beyond that the
    # reduction is strictly above 1 and grows with P.
    for r in rows:
        if r["nranks"] >= 64:
            assert r["reduction"] > 1.0, r
        else:
            assert r["reduction"] > 0.9, r
    measured_1024 = [r for r in rows
                     if r["kind"] == "measured" and r["nranks"] == 1024]
    assert any(r["reduction"] > 1.3 for r in measured_1024)
    summit = [r for r in rows if r["nranks"] == 262144]
    assert summit and 1.5 < summit[0]["reduction"] < 2.5
