"""Figure 10: achieved % of machine peak for Cholesky — the same three
scalings as Figure 9.

Expected shape (paper): COnfCHOX leads; CAPITAL (2.5D but 5.6x volume)
trails; the latency-bound collapse mirrors LU's.
"""

import pytest

from repro.analysis import fig10_cholesky_scaling, format_table

P_SWEEP = (4, 16, 64, 256, 1024)


@pytest.mark.benchmark(group="fig9-10")
def test_fig10_cholesky_scaling(benchmark, save_result):
    rows = benchmark.pedantic(fig10_cholesky_scaling,
                              kwargs=dict(p_sweep=P_SWEEP),
                              iterations=1, rounds=1)
    table = format_table(
        ["workload", "implementation", "N", "ranks", "% of peak"],
        [[r["workload"], r["name"], r["n"], r["nranks"], r["peak_pct"]]
         for r in rows],
        title="Figure 10: Cholesky achieved % of peak", floatfmt="{:.1f}")
    save_result("fig10_cholesky_scaling", table)

    def peak(workload, name, p):
        for r in rows:
            if (r["workload"], r["name"], r["nranks"]) == (workload, name, p):
                return r["peak_pct"]
        return None

    for p in (64, 256, 1024):
        ours = peak("strong-131072", "confchox", p)
        for other in ("mkl-chol", "slate-chol", "capital"):
            assert ours >= peak("strong-131072", other, p)
    assert peak("strong-16384", "confchox", 1024) < \
        peak("strong-16384", "confchox", 16)
