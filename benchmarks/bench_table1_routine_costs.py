"""Table 1: per-routine communication and computation costs of COnfLUX vs
COnfCHOX, evaluated numerically and cross-checked against traces.

Expected shape (paper): the two algorithms communicate the same for the
panels and the trailing update, but Cholesky computes half as much in A11
(gemmt vs gemm) and skips the pivoting entirely.
"""

import pytest

from repro.analysis import format_table, table1_routine_costs
from repro.factorizations import confchox_cholesky, conflux_lu


@pytest.mark.benchmark(group="tables")
def test_table1_routine_costs(benchmark, save_result):
    rows = benchmark.pedantic(
        table1_routine_costs, kwargs=dict(n=16384, p=1024, t=0),
        iterations=1, rounds=1)
    table = format_table(
        ["routine", "LU comm", "LU comp", "Chol comm", "Chol comp"],
        [[r["routine"], r["lu_comm"], r["lu_comp"], r["chol_comm"],
          r["chol_comp"]] for r in rows],
        title="Table 1: per-routine costs at step t=0, N=16384, P=1024",
        floatfmt="{:.4g}")

    # Whole-run cross-check from the traces.
    n, p, c, v = 16384, 1024, 8, 32
    lu = conflux_lu(n, p, v=v, c=c, execute=False)
    ch = confchox_cholesky(n, p, v=v, c=c, execute=False)
    extra = format_table(
        ["metric", "COnfLUX", "COnfCHOX", "ratio"],
        [["mean recv words", lu.mean_recv_words, ch.mean_recv_words,
          lu.mean_recv_words / ch.mean_recv_words],
         ["total flops", lu.total_flops, ch.total_flops,
          lu.total_flops / ch.total_flops]],
        title="Whole-run trace cross-check")
    save_result("table1_routine_costs", table + "\n\n" + extra)

    by_routine = {r["routine"]: r for r in rows}
    assert by_routine["A10/A01"]["lu_comm"] == \
        by_routine["A10/A01"]["chol_comm"]
    assert by_routine["A11"]["chol_comp"] == pytest.approx(
        by_routine["A11"]["lu_comp"] / 2)
    assert by_routine["pivoting"]["chol_comm"] == 0.0
    # Trace level: ~equal volume, ~2x flops.
    assert lu.total_flops / ch.total_flops == pytest.approx(2.0, rel=0.05)
    assert lu.mean_recv_words / ch.mean_recv_words == pytest.approx(
        1.0, rel=0.3)
