"""Micro-benchmarks of the node-local kernels and of the factorization
execution mode (timing of the simulator itself, not the paper's machine).
"""

import numpy as np
import pytest

from repro.factorizations import confchox_cholesky, conflux_lu
from repro.kernels import blas


@pytest.mark.benchmark(group="kernels")
def test_bench_gemm(benchmark):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 256))
    b = rng.standard_normal((256, 256))
    out, fl = benchmark(blas.gemm, a, b)
    assert out.shape == (256, 256)


@pytest.mark.benchmark(group="kernels")
def test_bench_getrf(benchmark):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 64))
    lu, piv, _ = benchmark(blas.getrf, a)
    assert lu.shape == (256, 64)


@pytest.mark.benchmark(group="kernels")
def test_bench_potrf(benchmark):
    rng = np.random.default_rng(0)
    g = rng.standard_normal((256, 256))
    a = g @ g.T + 256 * np.eye(256)
    l, _ = benchmark(blas.potrf, a)
    assert np.allclose(l @ l.T, a)


@pytest.mark.benchmark(group="execution")
def test_bench_conflux_execute(benchmark):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 256)) + 256 * np.eye(256)
    res = benchmark.pedantic(
        lambda: conflux_lu(256, 16, v=16, c=2, a=a),
        iterations=1, rounds=3)
    assert res.lower is not None


@pytest.mark.benchmark(group="execution")
def test_bench_confchox_execute(benchmark):
    rng = np.random.default_rng(0)
    g = rng.standard_normal((256, 256))
    a = g @ g.T + 256 * np.eye(256)
    res = benchmark.pedantic(
        lambda: confchox_cholesky(256, 16, v=16, c=2, a=a),
        iterations=1, rounds=3)
    assert res.lower is not None


@pytest.mark.benchmark(group="execution")
def test_bench_conflux_trace(benchmark):
    """Trace-mode throughput: one paper-scale sweep point."""
    res = benchmark.pedantic(
        lambda: conflux_lu(16384, 1024, v=32, c=8, execute=False),
        iterations=1, rounds=3)
    assert res.mean_recv_words > 0
