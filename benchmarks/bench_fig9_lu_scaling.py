"""Figure 9: achieved % of machine peak for LU — strong scaling at
N = 2^17 and N = 2^14, and weak scaling at N = 8192 * sqrt(P/4).

Expected shape (paper): COnfLUX leads in nearly all cells; efficiency is
highest for large local domains (N^2/P > 2^27 gives ~40% of peak) and
collapses in the latency-bound regime (small N, large P).
"""

import pytest

from repro.analysis import fig9_lu_scaling, format_table

P_SWEEP = (4, 16, 64, 256, 1024)


@pytest.mark.benchmark(group="fig9-10")
def test_fig9_lu_scaling(benchmark, save_result):
    rows = benchmark.pedantic(fig9_lu_scaling,
                              kwargs=dict(p_sweep=P_SWEEP),
                              iterations=1, rounds=1)
    table = format_table(
        ["workload", "implementation", "N", "ranks", "% of peak"],
        [[r["workload"], r["name"], r["n"], r["nranks"], r["peak_pct"]]
         for r in rows],
        title="Figure 9: LU achieved % of peak", floatfmt="{:.1f}")
    save_result("fig9_lu_scaling", table)

    def peak(workload, name, p):
        for r in rows:
            if (r["workload"], r["name"], r["nranks"]) == (workload, name, p):
                return r["peak_pct"]
        return None

    # COnfLUX beats every baseline on the big strong-scaling runs.
    for p in (64, 256, 1024):
        ours = peak("strong-131072", "conflux", p)
        for other in ("mkl", "slate", "candmc"):
            assert ours >= peak("strong-131072", other, p)
    # Large local domains reach healthy efficiency (paper: ~40%).
    assert peak("strong-131072", "conflux", 64) > 25
    # Latency-bound corner: N=2^14 on 1024 ranks collapses.
    assert peak("strong-16384", "conflux", 1024) < \
        peak("strong-16384", "conflux", 16)
