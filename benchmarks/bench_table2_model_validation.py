"""Table 2: parallel I/O cost models and their validation.

Regenerates (a) the model table of the compared implementations and
(b) the paper's validation claim: for MKL, SLATE, COnfLUX and COnfCHOX
the models match the measured (traced) volumes within a few percent; the
CANDMC/CAPITAL author models are cruder.
"""

import pytest

from repro.analysis import format_table, table2_model_validation
from repro.models import costmodels as cm


@pytest.mark.benchmark(group="tables")
def test_table2_model_validation(benchmark, save_result):
    rows = benchmark.pedantic(
        table2_model_validation,
        kwargs=dict(cases=((8192, 256), (16384, 1024), (32768, 4096))),
        iterations=1, rounds=1)
    table = format_table(
        ["implementation", "N", "ranks", "measured", "model", "error %"],
        [[r["name"], r["n"], r["nranks"], r["measured"], r["model"],
          r["error_pct"]] for r in rows],
        title="Table 2 validation: measured (traced) vs model volumes",
        floatfmt="{:.4g}")

    # The model table itself (leading terms, per the paper).
    n, p = 16384, 1024
    m = 8 * float(n) * n / p
    model_rows = [
        ["MKL", "2D, panel", "N^2/sqrt(P)", cm.mkl_lu_paper_model(n, p)],
        ["SLATE", "2D, block", "N^2/sqrt(P)", cm.slate_lu_paper_model(n, p)],
        ["CANDMC", "nested 2.5D", "5N^3/(P sqrt(M))",
         cm.candmc_paper_model(n, p, m)],
        ["CAPITAL", "2.5D", "45N^3/(8P sqrt(M))",
         cm.capital_paper_model(n, p, m)],
        ["COnfLUX/CHOX", "1D/2.5D", "N^3/(P sqrt(M))",
         cm.conflux_paper_model(n, p, m)],
    ]
    models = format_table(
        ["library", "decomposition", "leading cost",
         f"words @ N={n}, P={p}"],
        model_rows, title="Table 2: I/O cost models")
    save_result("table2_model_validation", models + "\n\n" + table)

    for r in rows:
        if r["name"] in ("conflux", "confchox", "mkl", "slate", "mkl-chol"):
            assert abs(r["error_pct"]) <= 3.0, r
        else:
            assert abs(r["error_pct"]) <= 40.0, r
