"""Figure 8a: communication volume per node for varying P, N = 16384.

Regenerates the measured series (traced volumes) and the model lines for
every LU implementation.  Expected shape (paper): COnfLUX lowest
everywhere; MKL and SLATE nearly equal (slight SLATE advantage); CANDMC
highest at these scales despite being asymptotically optimal.
"""

import pytest

from repro.analysis import fig8a_comm_volume, format_table

P_SWEEP = (4, 16, 64, 256, 1024)
N = 16384


@pytest.mark.benchmark(group="fig8")
def test_fig8a_comm_volume(benchmark, save_result):
    series = benchmark.pedantic(
        fig8a_comm_volume, kwargs=dict(n=N, p_sweep=P_SWEEP),
        iterations=1, rounds=1)
    rows = []
    for name, pts in series.items():
        for pt in pts:
            rows.append([name, pt.nranks,
                         pt.measured_bytes_per_node / 1e9,
                         pt.model_bytes_per_node / 1e9])
    table = format_table(
        ["implementation", "ranks", "measured GB/node", "model GB/node"],
        rows, title=f"Figure 8a: LU communication volume per node, N={N}")
    save_result("fig8a_comm_volume", table)

    # Shape assertions (the paper's qualitative claims).  At P <= 16 the
    # replication depth is 1-2 and COnfLUX's O(N^2/P) scatter terms make
    # it roughly tie with the 2D codes (within 10%, see EXPERIMENTS.md);
    # from P = 64 up it is strictly lowest, and the gap widens with P.
    by_name = {name: [pt.measured_words for pt in pts]
               for name, pts in series.items()}
    for i, p in enumerate(P_SWEEP):
        best_other = min(v[i] for k, v in by_name.items() if k != "conflux")
        if p >= 64:
            assert by_name["conflux"][i] < best_other
        else:
            assert by_name["conflux"][i] < 1.5 * best_other
        assert by_name["slate"][i] <= by_name["mkl"][i]
    # The reduction grows with P.
    last = len(P_SWEEP) - 1
    assert by_name["mkl"][last] / by_name["conflux"][last] > \
        by_name["mkl"][2] / by_name["conflux"][2] * 0.99
