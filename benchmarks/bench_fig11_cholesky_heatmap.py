"""Figure 11: COnfCHOX speedup and % of peak heatmaps (the Cholesky
counterpart of Figure 1).

Expected shape (paper): COnfCHOX wins almost everywhere, up to ~1.8x,
with SLATE second-best at small scale.
"""

import pytest

from repro.analysis import fig11_cholesky_heatmap, format_table

N_SWEEP = (4096, 16384, 65536)
P_SWEEP = (4, 16, 64, 256, 1024)


@pytest.mark.benchmark(group="fig1-11")
def test_fig11_cholesky_heatmap(benchmark, save_result):
    cells = benchmark.pedantic(
        fig11_cholesky_heatmap,
        kwargs=dict(n_sweep=N_SWEEP, p_sweep=P_SWEEP),
        iterations=1, rounds=1)
    rows = []
    for c in cells:
        if c["status"] == "ok":
            rows.append([c["n"], c["nranks"], f"{c['speedup']:.2f}x",
                         c["second_best"], f"{c['our_peak_pct']:.1f}%"])
        else:
            rows.append([c["n"], c["nranks"], c["status"], "-", "-"])
    table = format_table(
        ["N", "ranks", "speedup", "second-best", "COnfCHOX % peak"], rows,
        title="Figure 11: COnfCHOX speedup vs fastest state-of-the-art")
    save_result("fig11_cholesky_heatmap", table)

    ok = [c for c in cells if c["status"] == "ok"]
    assert ok
    wins = sum(1 for c in ok if c["speedup"] >= 0.99)
    assert wins >= 0.85 * len(ok)
