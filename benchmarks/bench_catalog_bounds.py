"""Framework-generality benchmark: the Section-3 pipeline applied to the
extended kernel catalog (TRSM, SYRK, LDL^T, GEMV) — the paper's claim
that the method "can be successfully applied to derive tight I/O lower
bounds for many linear algebra kernels".
"""

import math

import pytest

from repro.analysis import format_table
from repro.lowerbounds import (
    derive_cholesky_bound,
    derive_gemv_bound,
    derive_ldlt_bound,
    derive_lu_bound,
    derive_matmul_bound,
    derive_syrk_bound,
    derive_trsm_bound,
)


@pytest.mark.benchmark(group="bounds")
def test_catalog_bounds(benchmark, save_result):
    n, mem = 8192, 2.0 ** 16

    def derive_all():
        return {
            "LU": derive_lu_bound(n, mem),
            "Cholesky": derive_cholesky_bound(n, mem),
            "Matmul": derive_matmul_bound(n, mem),
            "TRSM": derive_trsm_bound(n, mem),
            "SYRK": derive_syrk_bound(n, mem),
            "LDL^T": derive_ldlt_bound(n, mem),
            "GEMV": derive_gemv_bound(n, mem),
        }

    bounds = benchmark.pedantic(derive_all, iterations=1, rounds=1)
    rows = []
    for name, b in bounds.items():
        rho = max(a.intensity.rho for a in b.per_statement.values())
        rows.append([name, rho, b.sequential_bound,
                     b.sequential_bound / (n * n)])
    table = format_table(
        ["kernel", "max rho", "Q bound", "Q / N^2"],
        rows, title=f"Section-3 pipeline over the kernel catalog "
                    f"(N={n}, M=2^16)")
    save_result("catalog_bounds", table)

    srt = math.sqrt(mem) / 2
    for name in ("LU", "Cholesky", "Matmul", "TRSM", "SYRK", "LDL^T"):
        b = bounds[name]
        rho = max(a.intensity.rho for a in b.per_statement.values())
        assert rho == pytest.approx(srt, rel=1e-2)
    # Hierarchy of constants: matmul 2x > trsm/syrk 1x > lu 2/3 > chol 1/3.
    assert bounds["Matmul"].sequential_bound > \
        bounds["TRSM"].sequential_bound > \
        bounds["LU"].sequential_bound > \
        bounds["Cholesky"].sequential_bound
    # GEMV: memory-insensitive ~N^2.
    assert bounds["GEMV"].sequential_bound == pytest.approx(n * n, rel=0.1)
