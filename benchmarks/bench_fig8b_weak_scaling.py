"""Figure 8b: weak-scaling communication volume per node, N = 3200 * cbrt(P).

Expected shape (paper): the 2.5D codes (COnfLUX, CANDMC) retain constant
per-node volume under constant work per node, while the 2D codes (MKL,
SLATE) grow ~P^(1/6).
"""

import pytest

from repro.analysis import fig8b_weak_scaling, format_table

P_SWEEP = (8, 27, 64, 216, 512)


@pytest.mark.benchmark(group="fig8")
def test_fig8b_weak_scaling(benchmark, save_result):
    series = benchmark.pedantic(
        fig8b_weak_scaling, kwargs=dict(p_sweep=P_SWEEP),
        iterations=1, rounds=1)
    rows = []
    for name, pts in series.items():
        for pt in pts:
            rows.append([name, pt.nranks, pt.n,
                         pt.measured_bytes_per_node / 1e9])
    table = format_table(
        ["implementation", "ranks", "N", "measured GB/node"], rows,
        title="Figure 8b: weak scaling (N = 3200 * cbrt(P))")
    save_result("fig8b_weak_scaling", table)

    ours = [pt.measured_words for pt in series["conflux"]]
    candmc = [pt.measured_words for pt in series["candmc"]]
    mkl = [pt.measured_words for pt in series["mkl"]]
    # 2.5D: flat within a modest band over a 64x rank increase.
    assert max(ours) / min(ours) < 1.7
    assert max(candmc) / min(candmc) < 1.7
    # 2D: grows monotonically, by more than 1.5x overall.
    assert mkl[-1] > 1.5 * mkl[0]
