"""Section 6 headline results: the derived I/O lower bounds, the
derivation pipeline's agreement with the closed forms, and the
near-optimality factors of the implemented schedules.

Expected shape (paper): pipeline == closed forms; COnfLUX's leading term
is 1.5x its bound; pebbled toy cDAGs respect the sequential bounds.
"""

import math

import pytest

from repro.analysis import format_table, lower_bound_ratios
from repro.lowerbounds import (
    cholesky_io_lower_bound,
    derive_cholesky_bound,
    derive_lu_bound,
    derive_matmul_bound,
    lu_io_lower_bound,
    matmul_io_lower_bound,
)
from repro.pebbles import cholesky_cdag, lu_cdag, matmul_cdag, run_greedy


@pytest.mark.benchmark(group="bounds")
def test_bound_derivation_pipeline(benchmark, save_result):
    n, p, m = 16384, 1024, 2.0 ** 21

    def derive_all():
        return (derive_lu_bound(n, m, p), derive_cholesky_bound(n, m, p),
                derive_matmul_bound(n, m, p))

    lu, chol, mm = benchmark.pedantic(derive_all, iterations=1, rounds=3)
    rows = [
        ["LU", lu.parallel_bound, lu_io_lower_bound(n, p, m),
         "2N^3/(3P sqrt(M)) + N^2/(2P)"],
        ["Cholesky", chol.parallel_bound, cholesky_io_lower_bound(n, p, m),
         "N^3/(3P sqrt(M)) + N^2/(2P)"],
        ["Matmul", mm.parallel_bound, matmul_io_lower_bound(n, p, m),
         "2N^3/(P sqrt(M))"],
    ]
    table = format_table(
        ["kernel", "pipeline", "closed form", "paper formula"], rows,
        title=f"Section 6 bounds at N={n}, P={p}, M=2^21")
    save_result("lower_bounds_pipeline", table)

    assert lu.parallel_bound == pytest.approx(
        lu_io_lower_bound(n, p, m), rel=1e-2)
    assert chol.parallel_bound == pytest.approx(
        cholesky_io_lower_bound(n, p, m), rel=1e-2)
    # Intensities match the paper's closed forms.
    assert lu.intensity("S2").rho == pytest.approx(math.sqrt(m) / 2,
                                                   rel=1e-3)
    assert lu.intensity("S2").x0 == pytest.approx(3 * m, rel=1e-2)


@pytest.mark.benchmark(group="bounds")
def test_near_optimality_ratios(benchmark, save_result):
    rows = benchmark.pedantic(
        lower_bound_ratios,
        kwargs=dict(cases=((8192, 256), (16384, 1024), (65536, 1024))),
        iterations=1, rounds=1)
    table = format_table(
        ["kernel", "N", "ranks", "measured max", "lower bound", "ratio"],
        [[r["kernel"], r["n"], r["nranks"], r["measured_max"],
          r["lower_bound"], r["ratio"]] for r in rows],
        title="Near-optimality: schedule volume vs lower bound")
    save_result("lower_bound_ratios", table)
    # Leading-order factors are exactly 1.5x (LU) and 3x (Cholesky);
    # measured ratios add the O(M) layered-reduction term, which at the
    # maximal replication c = P^(1/3) is comparable to the leading term
    # (Lemma 10's "+O(M)"), landing LU in [1.5, 3.2) and Cholesky (whose
    # bound is 3x smaller to begin with) in [3, 4.5).
    for r in rows:
        assert r["ratio"] >= 1.0
        if r["kernel"] == "lu":
            assert 1.4 < r["ratio"] < 3.2, r
        else:
            assert 2.5 < r["ratio"] < 4.5, r


@pytest.mark.benchmark(group="bounds")
def test_pebbling_respects_bounds(benchmark, save_result):
    def pebble_all():
        return {
            "lu": run_greedy(lu_cdag(8), 16).io_cost,
            "cholesky": run_greedy(cholesky_cdag(8), 16).io_cost,
            "matmul": run_greedy(matmul_cdag(6), 16).io_cost,
        }

    costs = benchmark.pedantic(pebble_all, iterations=1, rounds=3)
    bounds = {
        "lu": derive_lu_bound(8, 16).sequential_bound,
        "cholesky": derive_cholesky_bound(
            8, 16).per_statement["S3"].io_lower_bound,
        "matmul": derive_matmul_bound(6, 16).sequential_bound,
    }
    rows = [[k, costs[k], bounds[k], costs[k] / bounds[k]]
            for k in costs]
    table = format_table(
        ["kernel", "greedy Q", "lower bound", "ratio"], rows,
        title="Red-blue pebbling (toy cDAGs) vs sequential bounds")
    save_result("pebbling_vs_bounds", table)
    for k in costs:
        assert costs[k] >= bounds[k]
