"""Constructive-schedule benchmark: the X-partition hint in action.

Section 12 claims X-partitioning is "more constructive: [it] provides
powerful hints for obtaining parallel schedules".  This bench measures
sequential pebbling I/O of the X-partition-guided blocked matmul
schedule vs a Belady-greedy baseline vs the derived lower bound.
"""

import pytest

from repro.analysis import format_table
from repro.lowerbounds import derive_matmul_bound
from repro.pebbles import matmul_cdag, run_blocked_matmul, run_greedy


@pytest.mark.benchmark(group="bounds")
def test_schedule_quality(benchmark, save_result):
    cases = [(8, 27), (12, 48), (16, 80), (20, 121)]

    def run_all():
        rows = []
        for n, m in cases:
            blocked = run_blocked_matmul(n, m).io_cost
            greedy = run_greedy(matmul_cdag(n), m).io_cost
            bound = derive_matmul_bound(n, m).sequential_bound
            rows.append([n, m, bound, blocked, greedy,
                         blocked / bound, greedy / bound])
        return rows

    rows = benchmark.pedantic(run_all, iterations=1, rounds=1)
    table = format_table(
        ["n", "M", "lower bound", "blocked Q", "greedy Q",
         "blocked/bound", "greedy/bound"],
        rows, title="Sequential matmul pebbling: X-partition-guided "
                    "blocking vs Belady greedy")
    save_result("schedule_quality", table)

    for n, m, bound, blocked, greedy, rb, rg in rows:
        assert blocked >= bound          # validity
        assert blocked < greedy          # the hint helps
        assert rb < 2.5                  # near the bound's constant
    # The greedy gap widens with scale; blocking stays tight.
    assert rows[-1][6] > rows[0][6]
