"""Ablation benches for the design choices of Section 7 (see DESIGN.md):
block size v, replication depth c, row masking vs swapping, and
tournament vs partial pivoting latency.
"""

import pytest

from repro.analysis import (
    block_size_ablation,
    format_table,
    pivoting_latency_ablation,
    replication_ablation,
    row_swap_ablation,
)


@pytest.mark.benchmark(group="ablations")
def test_block_size_ablation(benchmark, save_result):
    rows = benchmark.pedantic(
        block_size_ablation,
        kwargs=dict(n=16384, p=1024, c=8, v_sweep=(8, 16, 32, 64, 128)),
        iterations=1, rounds=1)
    table = format_table(
        ["v", "mean recv words", "max msgs", "est. time s", "% peak"],
        [[r["v"], r["mean_recv_words"], r["max_msgs"], r["time_s"],
          r["peak_pct"]] for r in rows],
        title="Ablation: tile size v (N=16384, P=1024, c=8)")
    save_result("ablation_block_size", table)
    msgs = [r["max_msgs"] for r in rows]
    assert all(b < a for a, b in zip(msgs, msgs[1:]))  # latency falls
    vols = [r["mean_recv_words"] for r in rows]
    assert vols[-1] > vols[0]                          # volume rises


@pytest.mark.benchmark(group="ablations")
def test_replication_ablation(benchmark, save_result):
    rows = benchmark.pedantic(
        replication_ablation,
        kwargs=dict(n=16384, p=1024, c_sweep=(1, 2, 4, 8)),
        iterations=1, rounds=1)
    table = format_table(
        ["c", "M (words)", "leading model", "measured", "O(M) overhead"],
        [[r["c"], r["mem_words"], r["leading_model"],
          r["mean_recv_words"], r["reduction_overhead"]] for r in rows],
        title="Ablation: replication depth c (N=16384, P=1024)")
    save_result("ablation_replication", table)
    vols = [r["mean_recv_words"] for r in rows]
    best = min(range(len(vols)), key=vols.__getitem__)
    assert 0 < best < len(vols) - 1  # interior optimum


@pytest.mark.benchmark(group="ablations")
def test_row_masking_ablation(benchmark, save_result):
    out = benchmark.pedantic(row_swap_ablation,
                             kwargs=dict(n=16384, p=1024),
                             iterations=1, rounds=1)
    lat = pivoting_latency_ablation(n=16384, p=1024, v=32)
    table = format_table(
        ["metric", "value"],
        [["masking words/rank (pivot indices)", out["masking_words"]],
         ["hypothetical swapping words/rank", out["swapping_words"]],
         ["swap overhead vs COnfLUX total", out["swap_overhead_fraction"]],
         ["partial-pivoting sync rounds", lat["partial_rounds"]],
         ["tournament sync rounds", lat["tournament_rounds"]],
         ["latency reduction factor", lat["round_reduction"]]],
        title="Ablation: row masking + tournament pivoting (Section 7.3)")
    save_result("ablation_row_masking", table)
    assert out["swapping_words"] > 50 * out["masking_words"]
    assert lat["round_reduction"] == 32.0
