"""Legacy shim: this offline environment lacks the `wheel` package, so
PEP 660 editable installs fail; `setup.py develop` works with the
installed setuptools. `pip install -e . --no-build-isolation` uses it."""
from setuptools import setup

setup()
