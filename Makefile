# Repo entry points.  Tier-1 verification is `make test`; CI
# (.github/workflows/ci.yml) gates on test + lint + bench-check.

PY ?= python

# Line-coverage floor (percent) for `make coverage` / CI's coverage
# gate.  A conservative floor below the suite's measured coverage:
# ratchet it up when coverage improves, never lower it silently.
COV_FLOOR ?= 85

.PHONY: test lint coverage bench-smoke bench-check plan atlas trace \
	fabric-check cache-gc

# Worker count for the process-pool sweep path; empty = script default
# (min(4, cores)).  Usage: make bench-smoke PARALLEL=4
PARALLEL ?=
PARALLEL_FLAG = $(if $(PARALLEL),--parallel $(PARALLEL))

## Run the tier-1 test suite (what CI and the PR driver gate on).
test:
	PYTHONPATH=src $(PY) -m pytest -x -q

## Coverage gate: the tier-1 suite under pytest-cov, failing below
## COV_FLOOR percent line coverage of src/repro.  Degrades to a notice
## on dev containers without pytest-cov — CI installs it, so the
## silent-skip path never gates a merge (same pattern as lint).
coverage:
	@if $(PY) -c "import pytest_cov" 2>/dev/null; then \
		PYTHONPATH=src $(PY) -m pytest -q --cov=repro \
			--cov-report=term --cov-fail-under=$(COV_FLOOR); \
	else \
		echo "pytest-cov not installed; skipping coverage gate" \
		     "(CI runs it with --cov-fail-under=$(COV_FLOOR))"; \
	fi

## Static checks (configuration in ruff.toml).  The container image may
## not ship ruff; locally the target degrades to a notice instead of
## failing — CI installs ruff and runs it directly, so the silent-skip
## path never gates a merge.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples scripts; \
	elif $(PY) -c "import ruff" 2>/dev/null; then \
		$(PY) -m ruff check src tests benchmarks examples scripts; \
	else \
		echo "ruff not installed; skipping lint (config committed in ruff.toml)"; \
	fi

## Fast trace-sweep perf snapshot (serial + process-pool); rewrites
## BENCH_engine.json at the root (the committed baseline bench-check
## gates against).  PARALLEL=N pins the pool's worker count.
bench-smoke:
	$(PY) scripts/bench_smoke.py $(PARALLEL_FLAG)

## Gate a fresh sweep against the committed BENCH_engine.json: fails on
## checksum drift, a >25% slowdown, or a pool-path checksum that
## diverges from the serial one (see check_bench_regression.py for the
## intentional-update procedure).  PARALLEL=N exercises the pool path
## with that worker count.
bench-check:
	$(PY) scripts/check_bench_regression.py $(PARALLEL_FLAG)

## Print the planner's pick (schedule + parameters + predicted cost)
## for a smoke (N, P, M) grid; fails if planning breaks or blows the
## wall-time budget (the batched closed-form path plans the grid in
## well under a second — the budget catches interpreter work sneaking
## back onto the scoring hot path).
PLAN_BUDGET_S ?= 20
plan:
	$(PY) scripts/plan_grid.py --budget-s $(PLAN_BUDGET_S)

## Build the smoke grid into a plan atlas under ATLAS_DIR (resumable,
## content-addressed — a code edit cold-starts it) and verify a
## PlanService serves every lattice point bit-identical to live
## planning.  CI runs this before `make plan`.
ATLAS_DIR ?= .atlas-smoke
atlas:
	$(PY) scripts/plan_grid.py --atlas $(ATLAS_DIR) --budget-s $(PLAN_BUDGET_S)

## Run every instrumented layer under repro.obs and export the span
## tree + superstep comm/memory timeline as Chrome-trace JSON (load
## TRACE_DIR/trace.json in chrome://tracing or ui.perfetto.dev) plus a
## flat metrics snapshot; fails if any span layer is missing.  CI
## archives the trace as a workflow artifact.
TRACE_DIR ?= .trace-smoke
trace:
	$(PY) scripts/trace_report.py --out $(TRACE_DIR)

## Two-worker fabric gate: shard the bench sweep matrix across
## FABRIC_WORKERS concurrent worker processes leasing batches out of
## one shared cache directory, reconcile on the coordinator, and fail
## unless the checksum is bit-identical to the committed
## BENCH_engine.json and every task is accounted for exactly once.
FABRIC_WORKERS ?= 2
fabric-check:
	$(PY) scripts/fabric_check.py --workers $(FABRIC_WORKERS)

## Prune stale cache entries (fingerprints from edited code, orphaned
## .tmp files; CACHE_GC_MAX_AGE_S additionally prunes current entries
## older than that).  Usage: make cache-gc CACHE_DIR=.atlas-smoke
CACHE_DIR ?= .atlas-smoke
CACHE_GC_MAX_AGE_S ?=
cache-gc:
	$(PY) scripts/cache_gc.py --cache $(CACHE_DIR) \
		$(if $(CACHE_GC_MAX_AGE_S),--max-age-s $(CACHE_GC_MAX_AGE_S))
