# Repo entry points.  Tier-1 verification is `make test`.

PY ?= python

.PHONY: test lint bench-smoke

## Run the tier-1 test suite (what CI and the PR driver gate on).
test:
	PYTHONPATH=src $(PY) -m pytest -x -q

## Static checks (configuration in ruff.toml).  The container image may
## not ship ruff; installing dependencies is out of scope here, so the
## target degrades to a notice instead of failing.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks examples scripts; \
	elif $(PY) -c "import ruff" 2>/dev/null; then \
		$(PY) -m ruff check src tests benchmarks examples scripts; \
	else \
		echo "ruff not installed; skipping lint (config committed in ruff.toml)"; \
	fi

## Fast trace-sweep perf snapshot; writes BENCH_engine.json at the root.
bench-smoke:
	$(PY) scripts/bench_smoke.py
